#pragma once

/// \file file.hpp
/// MPI-IO style file abstraction over the simulated PVFS2.
///
/// Independent operations:
///  * `write_at`            — contiguous write (MPI_File_write_at)
///  * `write_noncontig`     — noncontiguous write with a flattened extent
///                            list, executed per the chosen method (POSIX
///                            per-extent, PVFS2-native list I/O, or ROMIO
///                            data sieving)
///  * `read_at` / `read_noncontig` — the read twins (database streaming)
///  * `sync`                — MPI_File_sync (flush at every server)
///
/// Collective operation:
///  * `write_at_all`        — every participant calls it with its own
///                            extents; executed either as ROMIO-style
///                            two-phase I/O or as list-I/O-with-barriers
///                            (the paper's proposed alternative), per hints.
///
/// The inherent synchronization of collective I/O — the effect the paper
/// sets out to expose — is *structural* here: a participant cannot leave
/// `write_at_all` before every other participant has arrived and the
/// aggregators have drained their writes.  `collective_wait(rank)`
/// reports the accumulated stall.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mpi/comm.hpp"
#include "mpiio/datatype.hpp"
#include "mpiio/hints.hpp"
#include "pfs/pfs.hpp"
#include "sim/gate.hpp"
#include "sim/task.hpp"
#include "sim/wait_group.hpp"
#include "util/require.hpp"

namespace s3asim::mpiio {

class File {
 public:
  File(sim::Scheduler& scheduler, net::Network& network, pfs::Pfs& fs,
       mpi::Comm& comm, pfs::FileHandle handle,
       std::vector<mpi::Rank> participants, Hints hints = {})
      : scheduler_(&scheduler),
        network_(&network),
        fs_(&fs),
        comm_(&comm),
        handle_(handle),
        participants_(std::move(participants)),
        hints_(hints) {
    S3A_REQUIRE_MSG(!participants_.empty(),
                    "a file needs at least one participant");
    for (std::size_t slot = 0; slot < participants_.size(); ++slot) {
      S3A_REQUIRE(participants_[slot] < comm.size());
      slot_of_[participants_[slot]] = slot;
    }
    wait_time_.resize(participants_.size(), 0);
    next_collective_.resize(participants_.size(), 0);
    inactive_.resize(participants_.size(), false);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  [[nodiscard]] const Hints& hints() const noexcept { return hints_; }
  [[nodiscard]] pfs::FileHandle handle() const noexcept { return handle_; }

  /// Contiguous independent write.
  sim::Task<void> write_at(mpi::Rank rank, std::uint64_t offset,
                           std::uint64_t length, std::uint64_t query = 0) {
    co_await fs_->write_contiguous(handle_, comm_->endpoint_of(rank), offset,
                                   length, rank, query);
  }

  /// Independent noncontiguous write of pre-flattened extents.
  /// Dispatcher, not a coroutine: the Posix/ListIo path keeps the exact
  /// coroutine frame (and frame-pool behavior) of pre-sieving builds —
  /// the same transparency discipline as `pfs::Pfs`'s cache dispatchers.
  [[nodiscard]] sim::Task<void> write_noncontig(mpi::Rank rank,
                                                std::vector<Extent> extents,
                                                NoncontigMethod method,
                                                std::uint64_t query = 0) {
    if (method == NoncontigMethod::Sieve)
      return write_noncontig_sieved(rank, std::move(extents), query);
    return write_noncontig_direct(rank, std::move(extents), method, query);
  }

 private:
  sim::Task<void> write_noncontig_direct(mpi::Rank rank,
                                         std::vector<Extent> extents,
                                         NoncontigMethod method,
                                         std::uint64_t query) {
    if (method == NoncontigMethod::Posix) {
      co_await fs_->write_posix(handle_, comm_->endpoint_of(rank), extents,
                                rank, query);
    } else {
      co_await fs_->write_list(handle_, comm_->endpoint_of(rank), extents,
                               rank, query);
    }
  }

  sim::Task<void> write_noncontig_sieved(mpi::Rank rank,
                                         std::vector<Extent> extents,
                                         std::uint64_t query) {
    co_await fs_->write_sieved(handle_, comm_->endpoint_of(rank), extents,
                               hints_.sieve_buffer_bytes, rank, query);
  }

 public:

  /// Independent noncontiguous write described by a datatype at an offset.
  sim::Task<void> write_typed(mpi::Rank rank, std::uint64_t offset,
                              const Datatype& type, NoncontigMethod method,
                              std::uint64_t query = 0) {
    co_await write_noncontig(rank, type.flatten(offset), method, query);
  }

  /// Contiguous independent read (MPI_File_read_at) — used by
  /// query-segmentation tools streaming database fragments.
  sim::Task<void> read_at(mpi::Rank rank, std::uint64_t offset,
                          std::uint64_t length) {
    co_await fs_->read_contiguous(handle_, comm_->endpoint_of(rank), offset,
                                  length);
  }

  /// Independent noncontiguous read of pre-flattened extents — the read
  /// twin of `write_noncontig`, same three ADIO methods.
  sim::Task<void> read_noncontig(mpi::Rank rank, std::vector<Extent> extents,
                                 NoncontigMethod method) {
    switch (method) {
      case NoncontigMethod::Posix:
        // One fully synchronous round trip per extent, in order.
        for (const Extent& extent : extents)
          co_await fs_->read_contiguous(handle_, comm_->endpoint_of(rank),
                                        extent.offset, extent.length);
        break;
      case NoncontigMethod::ListIo:
        co_await fs_->read_list(handle_, comm_->endpoint_of(rank), extents);
        break;
      case NoncontigMethod::Sieve:
        co_await fs_->read_sieved(handle_, comm_->endpoint_of(rank), extents,
                                  hints_.sieve_buffer_bytes);
        break;
    }
  }

  /// MPI_File_sync.
  sim::Task<void> sync(mpi::Rank rank) {
    co_await fs_->sync(handle_, comm_->endpoint_of(rank));
  }

  /// Collective write: must be called once per participant per collective
  /// round, with that participant's (possibly empty) extent list.
  sim::Task<void> write_at_all(mpi::Rank rank, std::vector<Extent> extents,
                               std::uint64_t query = 0) {
    const std::size_t slot = slot_of(rank);
    const std::uint64_t id = next_collective_[slot]++;
    Context& ctx = context(id);

    // ---- Phase 0: arrival (the inherent synchronization). -----------------
    ctx.extents_by_slot[slot] = std::move(extents);
    const sim::Time before_arrive = scheduler_->now();
    ++ctx.arrived;
    maybe_open(ctx);
    if (!ctx.all_arrived.is_open()) co_await ctx.all_arrived.wait();
    wait_time_[slot] += scheduler_->now() - before_arrive;
    // Extent/offset allgather cost.
    co_await scheduler_->delay(allgather_cost());

    if (hints_.collective_algorithm == CollectiveAlgorithm::ListWithSync) {
      // The paper's proposed collective: everyone writes its own extents
      // with native list I/O, then synchronizes.
      co_await fs_->write_list(handle_, comm_->endpoint_of(rank),
                               ctx.extents_by_slot[slot], rank, query);
    } else {
      co_await two_phase_exchange_and_write(ctx, rank, slot, query);
    }

    // ---- Final phase: leave together. --------------------------------------
    const sim::Time before_exit = scheduler_->now();
    if (++ctx.finished == ctx.participant_count) {
      ctx.all_finished.open();
    } else {
      co_await ctx.all_finished.wait();
    }
    wait_time_[slot] += scheduler_->now() - before_exit;

    if (++ctx.departed == ctx.participant_count) contexts_.erase(id);
  }

  /// Fail-stop support: removes `rank` from collective participation.  The
  /// current and all future collective rounds complete once every *surviving*
  /// participant has arrived — peers blocked waiting for a dead rank are
  /// released (the two-phase plan is computed over survivors only).
  /// Independent operations are unaffected.  Idempotent.
  void deactivate(mpi::Rank rank) {
    const std::size_t slot = slot_of(rank);
    if (inactive_[slot]) return;
    inactive_[slot] = true;
    ++inactive_count_;
    S3A_REQUIRE_MSG(inactive_count_ < participants_.size(),
                    "every file participant failed");
    for (auto& [id, ctx] : contexts_) maybe_open(*ctx);
  }

  /// Cumulative time `rank` has spent stalled inside collective calls
  /// (arrival + exit synchronization; excludes its own writing).
  [[nodiscard]] sim::Time collective_wait(mpi::Rank rank) const {
    return wait_time_[slot_of(rank)];
  }

  /// Sum of collective stall time across every participant — what the core
  /// layer publishes as `mpiio.collective_wait_seconds` (observability).
  [[nodiscard]] sim::Time total_collective_wait() const noexcept {
    sim::Time total = 0;
    for (const sim::Time wait : wait_time_) total += wait;
    return total;
  }

  [[nodiscard]] const pfs::FileImage& image() const { return fs_->image(handle_); }

 private:
  struct Context {
    explicit Context(sim::Scheduler& scheduler, std::size_t parties)
        : all_arrived(scheduler),
          all_exchanged(scheduler),
          all_finished(scheduler),
          extents_by_slot(parties) {}
    sim::Gate all_arrived;
    sim::Gate all_exchanged;
    sim::Gate all_finished;
    std::vector<std::vector<Extent>> extents_by_slot;
    std::size_t arrived = 0;
    std::size_t exchanged = 0;
    std::size_t finished = 0;
    std::size_t departed = 0;
    /// Number of ranks in this round, snapshotted when the arrival gate
    /// opens (participants that were deactivated before arriving are not in
    /// the round; later phases count against this fixed membership).
    std::size_t participant_count = 0;
    // Two-phase plan, computed when the round opens:
    std::uint32_t aggregator_count = 0;
    std::vector<std::size_t> aggregator_slots; // active slots acting as aggs
    std::vector<Extent> domains;               // per-aggregator [offset,len)
    std::vector<std::vector<Extent>> to_write; // merged extents per aggregator
  };

  [[nodiscard]] std::size_t slot_of(mpi::Rank rank) const {
    const auto it = slot_of_.find(rank);
    S3A_REQUIRE_MSG(it != slot_of_.end(), "rank is not a file participant");
    return it->second;
  }

  Context& context(std::uint64_t id) {
    auto it = contexts_.find(id);
    if (it == contexts_.end()) {
      it = contexts_
               .emplace(id, std::make_unique<Context>(*scheduler_,
                                                      participants_.size()))
               .first;
    }
    return *it->second;
  }

  [[nodiscard]] std::size_t active_count() const noexcept {
    return participants_.size() - inactive_count_;
  }

  /// Opens a round's arrival gate once every active participant has arrived
  /// — triggered both by arrivals and by deactivations.
  void maybe_open(Context& ctx) {
    if (ctx.all_arrived.is_open()) return;
    if (ctx.arrived == 0 || ctx.arrived < active_count()) return;
    ctx.participant_count = ctx.arrived;
    plan(ctx);
    ctx.all_arrived.open();
  }

  [[nodiscard]] sim::Time allgather_cost() const noexcept {
    const auto parties = static_cast<double>(participants_.size());
    if (parties <= 1.0) return 0;
    const auto rounds =
        static_cast<sim::Time>(std::ceil(std::log2(parties)));
    return rounds * network_->params().latency;
  }

  /// Computes the two-phase plan: covered span, per-aggregator file domains
  /// (evenly split, optionally strip-aligned), and per-aggregator merged
  /// write lists.
  void plan(Context& ctx) {
    std::uint64_t lo = UINT64_MAX, hi = 0;
    std::vector<Extent> all;
    for (const auto& list : ctx.extents_by_slot) {
      for (const Extent& extent : list) {
        if (extent.length == 0) continue;
        lo = std::min(lo, extent.offset);
        hi = std::max(hi, extent.end());
        all.push_back(extent);
      }
    }
    // Aggregators are drawn from the *active* slots so a deactivated (dead)
    // participant is never given a file domain it can no longer write.
    std::vector<std::size_t> active_slots;
    for (std::size_t slot = 0; slot < participants_.size(); ++slot)
      if (!inactive_[slot]) active_slots.push_back(slot);
    const auto parties = static_cast<std::uint32_t>(active_slots.size());
    ctx.aggregator_count =
        hints_.cb_nodes == 0 ? parties : std::min(hints_.cb_nodes, parties);
    ctx.aggregator_slots.assign(active_slots.begin(),
                                active_slots.begin() + ctx.aggregator_count);
    ctx.domains.assign(ctx.aggregator_count, Extent{});
    ctx.to_write.assign(ctx.aggregator_count, {});
    if (all.empty()) return;

    std::uint64_t span = hi - lo;
    std::uint64_t chunk = (span + ctx.aggregator_count - 1) / ctx.aggregator_count;
    if (hints_.align_domains_to_strips) {
      const std::uint64_t strip = fs_->layout().strip_size();
      chunk = (chunk + strip - 1) / strip * strip;
    }
    for (std::uint32_t a = 0; a < ctx.aggregator_count; ++a) {
      const std::uint64_t start = std::min(hi, lo + a * chunk);
      const std::uint64_t end = std::min(hi, start + chunk);
      ctx.domains[a] = Extent{start, end - start};
    }

    // Merge all extents, then slice per domain.
    std::sort(all.begin(), all.end(), [](const Extent& a, const Extent& b) {
      return a.offset < b.offset;
    });
    std::vector<Extent> merged;
    for (const Extent& extent : all) {
      if (!merged.empty() && merged.back().end() >= extent.offset) {
        merged.back().length =
            std::max(merged.back().end(), extent.end()) - merged.back().offset;
      } else {
        merged.push_back(extent);
      }
    }
    for (std::uint32_t a = 0; a < ctx.aggregator_count; ++a) {
      const Extent& domain = ctx.domains[a];
      for (const Extent& extent : merged) {
        const std::uint64_t s = std::max(extent.offset, domain.offset);
        const std::uint64_t e = std::min(extent.end(), domain.end());
        if (s < e) ctx.to_write[a].push_back(Extent{s, e - s});
      }
    }
  }

  /// Bytes of `extents` falling inside `domain`.
  [[nodiscard]] static std::uint64_t bytes_in_domain(
      const std::vector<Extent>& extents, const Extent& domain) noexcept {
    std::uint64_t total = 0;
    for (const Extent& extent : extents) {
      const std::uint64_t s = std::max(extent.offset, domain.offset);
      const std::uint64_t e = std::min(extent.end(), domain.end());
      if (s < e) total += e - s;
    }
    return total;
  }

  sim::Process exchange_to(mpi::Rank from, mpi::Rank to, std::uint64_t bytes,
                           sim::WaitGroup& done) {
    co_await network_->transfer(comm_->endpoint_of(from), comm_->endpoint_of(to),
                                bytes);
    done.done();
  }

  sim::Task<void> two_phase_exchange_and_write(Context& ctx, mpi::Rank rank,
                                               std::size_t slot,
                                               std::uint64_t query) {
    // ROMIO generic two-phase implementation overhead (see Hints).
    co_await scheduler_->delay(hints_.two_phase_round_overhead);

    // ---- Phase 1: data exchange to aggregators. ---------------------------
    const std::vector<Extent>& mine = ctx.extents_by_slot[slot];
    sim::WaitGroup sends(*scheduler_);
    for (std::uint32_t a = 0; a < ctx.aggregator_count; ++a) {
      const std::uint64_t bytes = bytes_in_domain(mine, ctx.domains[a]);
      if (bytes == 0) continue;
      sends.add();
      scheduler_->spawn(exchange_to(
          rank, participants_[ctx.aggregator_slots[a]], bytes, sends));
    }
    co_await sends.wait();
    if (++ctx.exchanged == ctx.participant_count) {
      ctx.all_exchanged.open();
    } else {
      co_await ctx.all_exchanged.wait();
    }

    // ---- Phase 2: aggregators write their domains in cb_buffer_size
    //      rounds of (mostly) contiguous data. -------------------------------
    const auto agg_it = std::find(ctx.aggregator_slots.begin(),
                                  ctx.aggregator_slots.end(), slot);
    const auto agg =
        static_cast<std::size_t>(agg_it - ctx.aggregator_slots.begin());
    if (agg_it != ctx.aggregator_slots.end() && !ctx.to_write[agg].empty()) {
      const std::uint64_t round_bytes = std::max<std::uint64_t>(
          hints_.cb_buffer_size, fs_->layout().strip_size());
      std::vector<Extent> round;
      std::uint64_t filled = 0;
      for (const Extent& extent : ctx.to_write[agg]) {
        std::uint64_t offset = extent.offset;
        std::uint64_t remaining = extent.length;
        while (remaining > 0) {
          const std::uint64_t take = std::min(remaining, round_bytes - filled);
          round.push_back(Extent{offset, take});
          offset += take;
          remaining -= take;
          filled += take;
          if (filled == round_bytes) {
            co_await fs_->write_list(handle_, comm_->endpoint_of(rank), round,
                                     rank, query);
            round.clear();
            filled = 0;
          }
        }
      }
      if (!round.empty())
        co_await fs_->write_list(handle_, comm_->endpoint_of(rank), round,
                                 rank, query);
    }
  }

  sim::Scheduler* scheduler_;
  net::Network* network_;
  pfs::Pfs* fs_;
  mpi::Comm* comm_;
  pfs::FileHandle handle_;
  std::vector<mpi::Rank> participants_;
  Hints hints_;
  std::map<mpi::Rank, std::size_t> slot_of_;
  std::vector<sim::Time> wait_time_;
  std::vector<std::uint64_t> next_collective_;
  std::vector<bool> inactive_;  ///< deactivated (failed) participants
  std::size_t inactive_count_ = 0;
  std::map<std::uint64_t, std::unique_ptr<Context>> contexts_;
};

}  // namespace s3asim::mpiio
