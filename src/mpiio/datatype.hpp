#pragma once

/// \file datatype.hpp
/// A miniature MPI derived-datatype system with flattening.
///
/// ROMIO supports list I/O on PVFS2 through a "datatype flattening" pass
/// that turns an arbitrary derived datatype + file view into an offset-
/// length list (paper §3.1).  The strategies in s3asim describe their
/// noncontiguous result regions with these datatypes, and the I/O layer
/// flattens them before choosing POSIX / list / two-phase execution.

#include <cstdint>
#include <memory>
#include <vector>

#include "pfs/layout.hpp"
#include "util/require.hpp"

namespace s3asim::mpiio {

using pfs::Extent;

/// An immutable derived datatype: a sequence of (displacement, length)
/// blocks relative to the datatype's origin, plus an overall extent used
/// when the type is repeated.
class Datatype {
 public:
  /// A contiguous run of `length` bytes.
  [[nodiscard]] static Datatype contiguous(std::uint64_t length) {
    Datatype type;
    if (length > 0) type.blocks_.push_back(Extent{0, length});
    type.extent_ = length;
    return type;
  }

  /// MPI_Type_vector: `count` blocks of `block_length` bytes, strided by
  /// `stride` bytes.
  [[nodiscard]] static Datatype vector(std::uint64_t count,
                                       std::uint64_t block_length,
                                       std::uint64_t stride) {
    S3A_REQUIRE_MSG(stride >= block_length, "vector blocks must not overlap");
    Datatype type;
    type.blocks_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
      if (block_length > 0)
        type.blocks_.push_back(Extent{i * stride, block_length});
    type.extent_ = count == 0 ? 0 : (count - 1) * stride + block_length;
    return type;
  }

  /// MPI_Type_indexed (hindexed flavor): explicit displacement/length pairs.
  /// Displacements must be non-decreasing and non-overlapping.
  [[nodiscard]] static Datatype indexed(std::vector<Extent> blocks) {
    std::uint64_t prev_end = 0;
    bool first = true;
    std::uint64_t extent = 0;
    for (const Extent& block : blocks) {
      S3A_REQUIRE_MSG(first || block.offset >= prev_end,
                      "indexed blocks must be sorted and disjoint");
      prev_end = block.end();
      extent = std::max(extent, block.end());
      first = false;
    }
    Datatype type;
    type.blocks_ = std::move(blocks);
    std::erase_if(type.blocks_, [](const Extent& b) { return b.length == 0; });
    type.extent_ = extent;
    return type;
  }

  /// Concatenation of `count` copies of `element`, each advanced by the
  /// element's extent (MPI_Type_contiguous over a derived type).
  [[nodiscard]] static Datatype repeated(const Datatype& element,
                                         std::uint64_t count) {
    Datatype type;
    type.blocks_.reserve(element.blocks_.size() * count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t base = i * element.extent_;
      for (const Extent& block : element.blocks_)
        type.blocks_.push_back(Extent{base + block.offset, block.length});
    }
    type.extent_ = element.extent_ * count;
    return type;
  }

  /// Total bytes of data the type describes.
  [[nodiscard]] std::uint64_t size() const noexcept {
    std::uint64_t total = 0;
    for (const Extent& block : blocks_) total += block.length;
    return total;
  }

  /// The span from origin to the end of the last block.
  [[nodiscard]] std::uint64_t extent() const noexcept { return extent_; }

  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }
  [[nodiscard]] const std::vector<Extent>& blocks() const noexcept { return blocks_; }

  /// Flattening: absolute file extents of this type placed at `file_offset`,
  /// with adjacent blocks coalesced — exactly what list I/O consumes.
  [[nodiscard]] std::vector<Extent> flatten(std::uint64_t file_offset) const {
    std::vector<Extent> extents;
    extents.reserve(blocks_.size());
    for (const Extent& block : blocks_) {
      const std::uint64_t offset = file_offset + block.offset;
      if (!extents.empty() && extents.back().end() == offset) {
        extents.back().length += block.length;
      } else {
        extents.push_back(Extent{offset, block.length});
      }
    }
    return extents;
  }

 private:
  Datatype() = default;

  std::vector<Extent> blocks_;
  std::uint64_t extent_ = 0;
};

}  // namespace s3asim::mpiio
