#pragma once

/// \file message.hpp
/// Message and request types for the MPI-like layer.
///
/// Payloads carry *structured simulation data* (work assignments, score
/// lists, offset lists) in a std::any; the `bytes` field is what the network
/// model charges for.  This mirrors how S3aSim itself works: it moves real
/// MPI messages whose contents are synthetic.

#include <any>
#include <cstdint>
#include <memory>

#include "sim/gate.hpp"
#include "sim/scheduler.hpp"

namespace s3asim::mpi {

using Rank = std::uint32_t;
using Tag = std::int32_t;

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr Rank kAnySource = 0xffffffffu;
inline constexpr Tag kAnyTag = -1;

struct Message {
  Rank source = 0;
  Tag tag = 0;
  std::uint64_t bytes = 0;
  /// Set when the matching receive was torn down via Comm::cancel_posted
  /// (MPI_Cancel): no data arrived; receivers must check before `as<T>()`.
  bool cancelled = false;
  std::any payload{};

  /// Typed payload access; throws std::bad_any_cast on mismatch.
  template <class T>
  [[nodiscard]] const T& as() const {
    return std::any_cast<const T&>(payload);
  }
};

/// Shared completion state for nonblocking operations (MPI_Request).
class RequestState {
 public:
  explicit RequestState(sim::Scheduler& scheduler) : gate_(scheduler) {}

  [[nodiscard]] bool complete() const noexcept { return gate_.is_open(); }
  void mark_complete() { gate_.open(); }

  [[nodiscard]] sim::Gate& gate() noexcept { return gate_; }

  /// For receive requests: the matched message (valid once complete).
  Message message{};

 private:
  sim::Gate gate_;
};

using Request = std::shared_ptr<RequestState>;

}  // namespace s3asim::mpi
