#pragma once

/// \file message.hpp
/// Message and request types for the MPI-like layer.
///
/// Payloads carry *structured simulation data* (work assignments, score
/// lists, offset lists); the `bytes` field is what the network model
/// charges for.  This mirrors how S3aSim itself works: it moves real MPI
/// messages whose contents are synthetic.  Unlike `std::any`, the payload
/// box stores small nothrow-movable types inline (every payload the
/// simulator sends — score tuples, assignment headers, vectors of extents —
/// fits), so posting a message performs no allocation.

#include <any>  // std::bad_any_cast, kept as the mismatch exception type
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <typeinfo>
#include <utility>

#include "sim/gate.hpp"
#include "sim/scheduler.hpp"

namespace s3asim::mpi {

using Rank = std::uint32_t;
using Tag = std::int32_t;

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr Rank kAnySource = 0xffffffffu;
inline constexpr Tag kAnyTag = -1;

/// Type-erased move-only payload box with small-buffer storage.
///
/// Types up to `kInlineSize` bytes that are nothrow-move-constructible live
/// directly in the message (relocated by move on queue shuffles); larger or
/// throwing-move types fall back to one heap box, preserving `std::any`
/// semantics.  Access is via `as<T>()`, which throws `std::bad_any_cast` on
/// a type mismatch exactly as the `std::any`-based payload did.
class Payload {
 public:
  /// Covers every payload the simulator ships: MasterMsg (two words of ids
  /// plus a vector), ScoresMsg (four words), std::string, scalars.
  static constexpr std::size_t kInlineSize = 48;

  Payload() noexcept = default;

  template <class T, class D = std::decay_t<T>,
            class = std::enable_if_t<!std::is_same_v<D, Payload>>>
  Payload(T&& value) {  // NOLINT(google-explicit-constructor): mirrors any
    if constexpr (stores_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<T>(value));
      ops_ = &kOps<D, /*Inline=*/true>;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<T>(value)));
      ops_ = &kOps<D, /*Inline=*/false>;
    }
  }

  Payload(Payload&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  Payload& operator=(Payload&& other) noexcept {
    if (this == &other) return *this;
    reset();
    ops_ = other.ops_;
    if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
    return *this;
  }

  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;

  ~Payload() { reset(); }

  [[nodiscard]] bool has_value() const noexcept { return ops_ != nullptr; }

  /// Typed access; throws std::bad_any_cast on mismatch (as std::any did).
  template <class T>
  [[nodiscard]] const T& as() const {
    if (ops_ == nullptr || *ops_->type != typeid(T)) throw std::bad_any_cast();
    if constexpr (stores_inline<T>) {
      return *std::launder(reinterpret_cast<const T*>(storage_));
    } else {
      return **std::launder(reinterpret_cast<T* const*>(storage_));
    }
  }

 private:
  template <class T>
  static constexpr bool stores_inline =
      sizeof(T) <= kInlineSize && alignof(T) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<T>;

  struct Ops {
    /// Move-constructs dst from src and destroys src's object.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj) noexcept;
    const std::type_info* type;
  };

  template <class T, bool Inline>
  static constexpr Ops kOps{
      [](void* dst, void* src) noexcept {
        if constexpr (Inline) {
          T* object = std::launder(reinterpret_cast<T*>(src));
          ::new (dst) T(std::move(*object));
          object->~T();
        } else {
          ::new (dst) T*(*std::launder(reinterpret_cast<T**>(src)));
        }
      },
      [](void* obj) noexcept {
        if constexpr (Inline) {
          std::launder(reinterpret_cast<T*>(obj))->~T();
        } else {
          delete *std::launder(reinterpret_cast<T**>(obj));
        }
      },
      &typeid(T)};

  void reset() noexcept {
    if (ops_ == nullptr) return;
    ops_->destroy(storage_);
    ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize]{};
  const Ops* ops_ = nullptr;
};

struct Message {
  Rank source = 0;
  Tag tag = 0;
  std::uint64_t bytes = 0;
  /// Set when the matching receive was torn down via Comm::cancel_posted
  /// (MPI_Cancel): no data arrived; receivers must check before `as<T>()`.
  bool cancelled = false;
  Payload payload{};

  /// Typed payload access; throws std::bad_any_cast on mismatch.
  template <class T>
  [[nodiscard]] const T& as() const {
    return payload.as<T>();
  }
};

/// Shared completion state for nonblocking operations (MPI_Request).
class RequestState {
 public:
  explicit RequestState(sim::Scheduler& scheduler) : gate_(scheduler) {}

  [[nodiscard]] bool complete() const noexcept { return gate_.is_open(); }
  void mark_complete() { gate_.open(); }

  [[nodiscard]] sim::Gate& gate() noexcept { return gate_; }

  /// For receive requests: the matched message (valid once complete).
  Message message{};

 private:
  sim::Gate gate_;
};

using Request = std::shared_ptr<RequestState>;

}  // namespace s3asim::mpi
