#pragma once

/// \file comm.hpp
/// An MPI-like communicator over the simulated network.
///
/// Semantics follow the MPI point-to-point model closely enough to express
/// the paper's Algorithms 1 and 2 verbatim:
///  * `isend` returns immediately; the request completes when the message
///    has fully arrived at the destination NIC (conservative: between eager
///    and rendezvous; only waiters observe the difference).
///  * `irecv` matches against the unexpected-message queue first, then is
///    posted; matching is (source, tag) with wildcards, FIFO within a pair
///    (MPI's non-overtaking rule for identical envelopes).
///  * `test` is a free, instantaneous completion check (MPI_Test).
///  * `wait` suspends until completion (MPI_Wait).
///  * `barrier` is a dissemination-style barrier: all ranks arrive, then pay
///    ceil(log2(P)) network latencies.

#include <cmath>
#include <deque>
#include <memory>
#include <vector>

#include "mpi/message.hpp"
#include "net/network.hpp"
#include "sim/barrier.hpp"
#include "sim/task.hpp"
#include "util/require.hpp"

namespace s3asim::mpi {

/// Per-message observability hook: fires once per delivered message, after
/// the wire transfer completes (at matching time, whether or not a receive
/// was already posted).  `sent` is the isend call time, `received` the
/// arrival at the destination NIC.  Implemented by the core observer bridge
/// (flow events + message histograms); with no observer attached delivery
/// is unchanged.
class MessageObserver {
 public:
  virtual ~MessageObserver() = default;
  virtual void on_message_delivered(Rank src, Rank dst, Tag tag,
                                    std::uint64_t bytes, sim::Time sent,
                                    sim::Time received) = 0;
};

class Comm {
 public:
  /// Ranks map to network endpoints [endpoint_base, endpoint_base + size).
  Comm(sim::Scheduler& scheduler, net::Network& network, Rank size,
       net::EndpointId endpoint_base = 0)
      : scheduler_(&scheduler),
        network_(&network),
        size_(size),
        endpoint_base_(endpoint_base),
        barrier_(scheduler, size) {
    S3A_REQUIRE(size >= 1);
    S3A_REQUIRE(endpoint_base + size <= network.endpoint_count());
    mailboxes_.resize(size);
  }
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] Rank size() const noexcept { return size_; }

  /// Nonblocking send of `bytes` with a structured payload.
  Request isend(Rank src, Rank dst, Tag tag, std::uint64_t bytes,
                Payload payload = {}) {
    S3A_REQUIRE(src < size_ && dst < size_);
    S3A_REQUIRE_MSG(tag >= 0, "send tag must be non-negative");
    auto request = std::make_shared<RequestState>(*scheduler_);
    scheduler_->spawn(
        deliver(src, dst, tag, bytes, std::move(payload), request));
    return request;
  }

  /// Blocking send (MPI_Send): returns when the message has been delivered.
  sim::Task<void> send(Rank src, Rank dst, Tag tag, std::uint64_t bytes,
                       Payload payload = {}) {
    auto request = isend(src, dst, tag, bytes, std::move(payload));
    co_await request->gate().wait();
  }

  /// Nonblocking receive; `source`/`tag` may be wildcards.
  Request irecv(Rank self, Rank source, Tag tag) {
    S3A_REQUIRE(self < size_);
    auto request = std::make_shared<RequestState>(*scheduler_);
    Mailbox& box = mailboxes_[self];
    for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
      if (matches(source, tag, *it)) {
        request->message = std::move(*it);
        box.unexpected.erase(it);
        request->mark_complete();
        return request;
      }
    }
    box.posted.push_back(PostedRecv{source, tag, request});
    return request;
  }

  /// Blocking receive (MPI_Recv).
  sim::Task<Message> recv(Rank self, Rank source, Tag tag) {
    auto request = irecv(self, source, tag);
    co_await request->gate().wait();
    co_return std::move(request->message);
  }

  /// MPI_Test: instantaneous, cost-free completion check.
  [[nodiscard]] static bool test(const Request& request) {
    return request->complete();
  }

  /// MPI_Wait.
  static sim::Task<void> wait(Request request) {
    co_await request->gate().wait();
  }

  /// MPI_Waitall.
  static sim::Task<void> wait_all(std::vector<Request> requests) {
    for (auto& request : requests) co_await request->gate().wait();
  }

  /// MPI_Barrier over all ranks of this communicator.
  sim::Task<void> barrier() {
    co_await barrier_.arrive_and_wait();
    co_await scheduler_->delay(barrier_cost());
  }

  /// Fail-stop support: removes one rank from barrier membership so the
  /// survivors' barrier() completes without it (ULFM-style shrink).
  void barrier_leave() { barrier_.leave(); }

  /// MPI_Cancel analog, used at teardown: every receive still posted at
  /// `rank` completes immediately (zero simulated cost) with a message
  /// marked `cancelled`, so progress loops can exit instead of staying
  /// suspended forever.
  void cancel_posted(Rank rank) {
    S3A_REQUIRE(rank < size_);
    auto posted = std::move(mailboxes_[rank].posted);
    mailboxes_[rank].posted.clear();
    for (PostedRecv& recv : posted) {
      recv.request->message = Message{};
      recv.request->message.cancelled = true;
      recv.request->mark_complete();
    }
  }

  /// Number of messages sitting unmatched in a rank's unexpected queue.
  [[nodiscard]] std::size_t unexpected_count(Rank rank) const {
    S3A_REQUIRE(rank < size_);
    return mailboxes_[rank].unexpected.size();
  }
  /// Number of posted-but-unmatched receives at a rank.
  [[nodiscard]] std::size_t posted_count(Rank rank) const {
    S3A_REQUIRE(rank < size_);
    return mailboxes_[rank].posted.size();
  }

  [[nodiscard]] net::EndpointId endpoint_of(Rank rank) const noexcept {
    return endpoint_base_ + rank;
  }

  /// Attaches (or detaches, with nullptr) the per-message observer.
  void set_observer(MessageObserver* observer) noexcept {
    observer_ = observer;
  }

 private:
  struct PostedRecv {
    Rank source;
    Tag tag;
    Request request;
  };
  struct Mailbox {
    Mailbox() = default;
    // Message (and so this) is move-only; spelling it out keeps vector
    // growth on the move path instead of instantiating the deleted copy.
    Mailbox(const Mailbox&) = delete;
    Mailbox& operator=(const Mailbox&) = delete;
    Mailbox(Mailbox&&) noexcept = default;
    Mailbox& operator=(Mailbox&&) noexcept = default;

    std::vector<PostedRecv> posted;
    std::deque<Message> unexpected;
  };

  [[nodiscard]] static bool matches(Rank want_source, Tag want_tag,
                                    const Message& message) noexcept {
    const bool source_ok = want_source == kAnySource || want_source == message.source;
    const bool tag_ok = want_tag == kAnyTag || want_tag == message.tag;
    return source_ok && tag_ok;
  }

  [[nodiscard]] sim::Time barrier_cost() const noexcept {
    if (size_ <= 1) return 0;
    const auto rounds = static_cast<double>(
        std::ceil(std::log2(static_cast<double>(size_))));
    return static_cast<sim::Time>(rounds) * network_->params().latency;
  }

  sim::Process deliver(Rank src, Rank dst, Tag tag, std::uint64_t bytes,
                       Payload payload, Request request) {
    const sim::Time sent = scheduler_->now();
    co_await network_->transfer(endpoint_of(src), endpoint_of(dst), bytes);
    if (observer_ != nullptr)
      observer_->on_message_delivered(src, dst, tag, bytes, sent,
                                      scheduler_->now());
    Message message{.source = src, .tag = tag, .bytes = bytes,
                    .payload = std::move(payload)};
    Mailbox& box = mailboxes_[dst];
    bool matched = false;
    for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
      if (matches(it->source, it->tag, message)) {
        Request receiver = it->request;
        box.posted.erase(it);
        receiver->message = std::move(message);
        receiver->mark_complete();
        matched = true;
        break;
      }
    }
    if (!matched) box.unexpected.push_back(std::move(message));
    request->mark_complete();
  }

  sim::Scheduler* scheduler_;
  net::Network* network_;
  Rank size_;
  net::EndpointId endpoint_base_;
  MessageObserver* observer_ = nullptr;
  sim::Barrier barrier_;
  std::vector<Mailbox> mailboxes_;
};

}  // namespace s3asim::mpi
