#include "fault/fault.hpp"

#include <cctype>
#include <cmath>
#include <cstddef>
#include <map>
#include <sstream>
#include <stdexcept>

namespace s3asim::fault {

namespace {

[[nodiscard]] std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

[[noreturn]] void fail(std::string_view clause, std::string_view why) {
  throw std::invalid_argument("bad fault clause '" + std::string(clause) +
                              "': " + std::string(why));
}

[[nodiscard]] double parse_number(std::string_view text,
                                  std::string_view clause) {
  try {
    std::size_t used = 0;
    const double value = std::stod(std::string(text), &used);
    if (used != text.size()) fail(clause, "trailing junk in number");
    return value;
  } catch (const std::invalid_argument&) {
    fail(clause, "expected a number, got '" + std::string(text) + "'");
  } catch (const std::out_of_range&) {
    fail(clause, "number out of range: '" + std::string(text) + "'");
  }
}

/// key=value pairs of one clause body, order-insensitive, duplicates
/// rejected.
class Fields {
 public:
  Fields(std::string_view body, std::string_view clause) : clause_(clause) {
    while (!body.empty()) {
      const std::size_t comma = body.find(',');
      const std::string_view pair =
          trim(body.substr(0, comma));
      body = comma == std::string_view::npos ? std::string_view{}
                                             : body.substr(comma + 1);
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) fail(clause_, "expected key=value");
      const std::string key{trim(pair.substr(0, eq))};
      if (!fields_.emplace(key, trim(pair.substr(eq + 1))).second)
        fail(clause_, "duplicate key '" + key + "'");
    }
  }

  /// Consumes a required field.
  [[nodiscard]] std::string_view take(std::string_view key) {
    const auto it = fields_.find(std::string(key));
    if (it == fields_.end())
      fail(clause_, "missing required key '" + std::string(key) + "'");
    const std::string_view value = it->second;
    fields_.erase(it);
    return value;
  }

  /// Consumes an optional field.
  [[nodiscard]] std::string_view take_or(std::string_view key,
                                         std::string_view fallback) {
    const auto it = fields_.find(std::string(key));
    if (it == fields_.end()) return fallback;
    const std::string_view value = it->second;
    fields_.erase(it);
    return value;
  }

  void expect_exhausted() const {
    if (fields_.empty()) return;
    fail(clause_, "unknown key '" + fields_.begin()->first + "'");
  }

 private:
  std::string_view clause_;
  std::map<std::string, std::string_view> fields_;
};

[[nodiscard]] std::uint32_t parse_index(std::string_view text,
                                        std::string_view clause) {
  const double value = parse_number(text, clause);
  if (value < 0 || value != std::floor(value))
    fail(clause, "expected a non-negative integer, got '" + std::string(text) +
                     "'");
  return static_cast<std::uint32_t>(value);
}

[[nodiscard]] std::string format_time(sim::Time t) {
  std::ostringstream out;
  out << sim::to_seconds(t) << "s";
  return out.str();
}

}  // namespace

sim::Time parse_time(std::string_view text) {
  const std::string_view trimmed = trim(text);
  double scale = 1e9;  // seconds by default
  std::string_view digits = trimmed;
  const auto ends_with = [&](std::string_view suffix) {
    return trimmed.size() > suffix.size() &&
           trimmed.substr(trimmed.size() - suffix.size()) == suffix;
  };
  if (ends_with("ns")) {
    scale = 1.0;
    digits = trimmed.substr(0, trimmed.size() - 2);
  } else if (ends_with("us")) {
    scale = 1e3;
    digits = trimmed.substr(0, trimmed.size() - 2);
  } else if (ends_with("ms")) {
    scale = 1e6;
    digits = trimmed.substr(0, trimmed.size() - 2);
  } else if (ends_with("s")) {
    scale = 1e9;
    digits = trimmed.substr(0, trimmed.size() - 1);
  }
  const double value = parse_number(trim(digits), trimmed);
  if (value < 0) throw std::invalid_argument("negative time: '" +
                                             std::string(text) + "'");
  return static_cast<sim::Time>(std::llround(value * scale));
}

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view clause = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    const std::string_view kind = trim(clause.substr(0, colon));
    const std::string_view body =
        colon == std::string_view::npos ? std::string_view{}
                                        : clause.substr(colon + 1);
    Fields fields(body, clause);

    if (kind == "kill") {
      WorkerKill kill;
      kill.rank = parse_index(fields.take("worker"), clause);
      kill.at = parse_time(fields.take("at"));
      plan.kills.push_back(kill);
    } else if (kind == "slow") {
      WorkerSlow slow;
      slow.rank = parse_index(fields.take("worker"), clause);
      slow.from = parse_time(fields.take_or("from", "0"));
      slow.factor = parse_number(fields.take("factor"), clause);
      if (slow.factor < 1.0) fail(clause, "slowdown factor must be >= 1");
      plan.slowdowns.push_back(slow);
    } else if (kind == "delay") {
      ScoreDelay delay;
      delay.rank = parse_index(fields.take("worker"), clause);
      delay.from = parse_time(fields.take_or("from", "0"));
      delay.by = parse_time(fields.take("by"));
      plan.delays.push_back(delay);
    } else if (kind == "drop") {
      ScoreDrop drop;
      drop.rank = parse_index(fields.take("worker"), clause);
      drop.from = parse_time(fields.take_or("from", "0"));
      drop.probability = parse_number(fields.take("prob"), clause);
      if (drop.probability < 0.0 || drop.probability > 1.0)
        fail(clause, "drop probability must be in [0, 1]");
      plan.drops.push_back(drop);
    } else if (kind == "server") {
      ServerFault server;
      server.server = parse_index(fields.take("id"), clause);
      server.from = parse_time(fields.take_or("from", "0"));
      server.service_factor =
          parse_number(fields.take_or("factor", "1"), clause);
      if (server.service_factor < 1.0)
        fail(clause, "server service factor must be >= 1");
      server.stall = parse_time(fields.take_or("stall", "0"));
      if (server.service_factor == 1.0 && server.stall == 0)
        fail(clause, "server fault needs factor>1 and/or stall>0");
      plan.servers.push_back(server);
    } else if (kind == "crash") {
      if (plan.crash_at != kNever) fail(clause, "only one crash clause allowed");
      plan.crash_at = parse_time(fields.take("at"));
    } else {
      fail(clause, "unknown fault kind '" + std::string(kind) + "'");
    }
    fields.expect_exhausted();
  }
  return plan;
}

std::string FaultPlan::describe() const {
  if (empty()) return "no faults";
  std::ostringstream out;
  const char* sep = "";
  for (const WorkerKill& kill : kills) {
    out << sep << "kill worker " << kill.rank << " at "
        << format_time(kill.at);
    sep = "; ";
  }
  for (const WorkerSlow& slow : slowdowns) {
    out << sep << "slow worker " << slow.rank << " x" << slow.factor
        << " from " << format_time(slow.from);
    sep = "; ";
  }
  for (const ScoreDelay& delay : delays) {
    out << sep << "delay worker " << delay.rank << " scores by "
        << format_time(delay.by) << " from " << format_time(delay.from);
    sep = "; ";
  }
  for (const ScoreDrop& drop : drops) {
    out << sep << "drop worker " << drop.rank << " scores p=" << drop.probability
        << " from " << format_time(drop.from);
    sep = "; ";
  }
  for (const ServerFault& server : servers) {
    out << sep << "degrade server " << server.server << " x"
        << server.service_factor << " stall " << format_time(server.stall)
        << " from " << format_time(server.from);
    sep = "; ";
  }
  if (crash_at != kNever) {
    out << sep << "crash run at " << format_time(crash_at);
  }
  return out.str();
}

}  // namespace s3asim::fault
