#pragma once

/// \file fault.hpp
/// Fault-injection plans for the simulator.
///
/// The paper motivates per-query output flushing as a fault-tolerance
/// mechanism (§2: a crashed run resumes from the last completed query); a
/// `FaultPlan` makes the failures themselves first-class so the recovery
/// machinery in `src/core` can be exercised deterministically:
///
///  * kill a worker at a simulated time (fail-stop);
///  * slow a worker's compute by a factor from a given time (straggler);
///  * delay or probabilistically drop a worker's score messages;
///  * degrade or stall a PFS server (translated to
///    `pfs::ServerDegradation`);
///  * crash the whole run at a time (driver-level resume-from-flush).
///
/// Plans are value types: the same seed + the same plan replays the exact
/// same event sequence (drop decisions are hashed from seed, rank, and a
/// per-rank send counter — never from global RNG state).
///
/// The CLI spec grammar (`--fault`, also `fault=` in config files) is
/// semicolon-separated clauses:
///
///     kill:worker=3,at=120s
///     slow:worker=2,from=10s,factor=4
///     delay:worker=1,from=0,by=5ms
///     drop:worker=4,from=0,prob=0.25
///     server:id=0,from=30s,factor=8,stall=2s
///     crash:at=200s
///
/// Times accept `s` (default), `ms`, `us`, `ns` suffixes.

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace s3asim::fault {

/// "This event never happens."
inline constexpr sim::Time kNever = std::numeric_limits<sim::Time>::max();

/// Fail-stop death of a worker rank at an absolute simulated time.
struct WorkerKill {
  std::uint32_t rank = 0;
  sim::Time at = 0;
};

/// From `from` onwards, the worker's searches take `factor`× as long.
struct WorkerSlow {
  std::uint32_t rank = 0;
  sim::Time from = 0;
  double factor = 1.0;
};

/// From `from` onwards, every score message the worker sends is held back
/// an extra `by` before entering the network.
struct ScoreDelay {
  std::uint32_t rank = 0;
  sim::Time from = 0;
  sim::Time by = 0;
};

/// From `from` onwards, each score message the worker sends is lost with
/// probability `probability` (decided by a deterministic per-send hash).
struct ScoreDrop {
  std::uint32_t rank = 0;
  sim::Time from = 0;
  double probability = 0.0;
};

/// PFS server degradation; mirrors pfs::ServerDegradation (the fault module
/// stays independent of the pfs layer — the core driver translates).
struct ServerFault {
  std::uint32_t server = 0;
  sim::Time from = 0;
  double service_factor = 1.0;
  sim::Time stall = 0;
};

struct FaultPlan {
  std::vector<WorkerKill> kills;
  std::vector<WorkerSlow> slowdowns;
  std::vector<ScoreDelay> delays;
  std::vector<ScoreDrop> drops;
  std::vector<ServerFault> servers;
  /// Whole-run crash time for resume-from-flush (kNever = no crash).
  sim::Time crash_at = kNever;

  [[nodiscard]] bool empty() const noexcept {
    return kills.empty() && slowdowns.empty() && delays.empty() &&
           drops.empty() && servers.empty() && crash_at == kNever;
  }

  /// True when any fault touches worker behavior or message flow — the
  /// switch that selects the core's recovery-capable master loop.  Pure
  /// server degradations and whole-run crashes do not perturb the
  /// master/worker protocol.
  [[nodiscard]] bool perturbs_workers() const noexcept {
    return !kills.empty() || !slowdowns.empty() || !delays.empty() ||
           !drops.empty();
  }

  /// Earliest kill time for `rank` (kNever if it survives).
  [[nodiscard]] sim::Time kill_time(std::uint32_t rank) const noexcept {
    sim::Time earliest = kNever;
    for (const WorkerKill& kill : kills)
      if (kill.rank == rank && kill.at < earliest) earliest = kill.at;
    return earliest;
  }

  /// Product of the slowdown factors active for `rank` at time `now` (>= 1).
  [[nodiscard]] double slow_factor(std::uint32_t rank,
                                   sim::Time now) const noexcept {
    double factor = 1.0;
    for (const WorkerSlow& slow : slowdowns)
      if (slow.rank == rank && now >= slow.from) factor *= slow.factor;
    return factor;
  }

  /// Sum of the score delays active for `rank` at time `now`.
  [[nodiscard]] sim::Time score_delay(std::uint32_t rank,
                                      sim::Time now) const noexcept {
    sim::Time total = 0;
    for (const ScoreDelay& delay : delays)
      if (delay.rank == rank && now >= delay.from) total += delay.by;
    return total;
  }

  /// Highest drop probability active for `rank` at time `now`.
  [[nodiscard]] double drop_probability(std::uint32_t rank,
                                        sim::Time now) const noexcept {
    double probability = 0.0;
    for (const ScoreDrop& drop : drops)
      if (drop.rank == rank && now >= drop.from && drop.probability > probability)
        probability = drop.probability;
    return probability;
  }

  /// One-line human-readable summary ("no faults" when empty).
  [[nodiscard]] std::string describe() const;
};

/// Parses the CLI/config spec grammar documented above.  Empty or
/// whitespace-only specs yield an empty plan.  Throws std::invalid_argument
/// with a pointed message on malformed input.
[[nodiscard]] FaultPlan parse_fault_plan(std::string_view spec);

/// Parses a time literal: a decimal number with an optional `s` (default),
/// `ms`, `us`, or `ns` suffix.  Throws std::invalid_argument.
[[nodiscard]] sim::Time parse_time(std::string_view text);

}  // namespace s3asim::fault
