#pragma once

/// \file network.hpp
/// Store-and-forward endpoint network.
///
/// Every endpoint owns a TX resource and an RX resource.  A transfer:
///   1. serializes at the sender's TX path for `overhead + bytes/bw`,
///   2. crosses the wire (pure latency, unlimited in flight — Myrinet's
///      switching fabric was not the bottleneck in the paper's runs),
///   3. serializes at the receiver's RX path for `overhead + bytes/bw`.
///
/// The RX resource is what creates the master-NIC contention central to the
/// paper's MW results: 95 workers funneling result payloads into one
/// endpoint queue behind each other.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/model.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/require.hpp"

namespace s3asim::net {

/// Cumulative per-endpoint traffic counters (observability for tests and
/// the trace layer).
struct EndpointCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  sim::Time tx_busy = 0;
  sim::Time rx_busy = 0;
};

class Network {
 public:
  Network(sim::Scheduler& scheduler, std::uint32_t endpoint_count,
          LinkParams params = LinkParams::myrinet2000())
      : scheduler_(&scheduler), params_(params) {
    S3A_REQUIRE(endpoint_count >= 1);
    endpoints_.reserve(endpoint_count);
    for (std::uint32_t i = 0; i < endpoint_count; ++i)
      endpoints_.push_back(std::make_unique<Endpoint>(scheduler));
    if (params.fabric_concurrent_transfers > 0)
      fabric_ = std::make_unique<sim::Resource>(
          scheduler, params.fabric_concurrent_transfers);
  }

  [[nodiscard]] std::uint32_t endpoint_count() const noexcept {
    return static_cast<std::uint32_t>(endpoints_.size());
  }
  [[nodiscard]] const LinkParams& params() const noexcept { return params_; }

  /// The network's lookahead: the guaranteed minimum simulated delay of any
  /// cross-endpoint interaction (pure wire latency — overhead and
  /// serialization only add to it).  This is the window width the
  /// conservative parallel engine (sim::LpScheduler) partitions execution
  /// by; a zero-latency network has no usable lookahead and only the
  /// serial engine can run it.
  [[nodiscard]] sim::Time lookahead() const noexcept { return params_.latency; }

  /// Simulates moving `bytes` from `src` to `dst`; completes when the last
  /// byte has been ejected at the receiver.  Self-sends skip the wire but
  /// still pay the software overhead once.
  sim::Task<void> transfer(EndpointId src, EndpointId dst, std::uint64_t bytes) {
    S3A_REQUIRE(src < endpoints_.size() && dst < endpoints_.size());
    Endpoint& sender = *endpoints_[src];
    Endpoint& receiver = *endpoints_[dst];

    if (src == dst) {
      const sim::Time cost = params_.per_message_overhead;
      co_await scheduler_->delay(cost);
      ++sender.counters.messages_sent;
      ++receiver.counters.messages_received;
      sender.counters.bytes_sent += bytes;
      receiver.counters.bytes_received += bytes;
      co_return;
    }

    const sim::Time wire_time =
        params_.per_message_overhead +
        sim::transfer_time(bytes, params_.bandwidth_bps);

    // TX serialization at the sender; an oversubscribed fabric additionally
    // bounds how many injections can proceed at once.
    co_await sender.tx.acquire();
    {
      sim::ResourceHold hold(sender.tx);
      if (fabric_) {
        co_await fabric_->acquire();
        sim::ResourceHold fabric_hold(*fabric_);
        co_await scheduler_->delay(wire_time);
      } else {
        co_await scheduler_->delay(wire_time);
      }
      sender.counters.tx_busy += wire_time;
    }
    ++sender.counters.messages_sent;
    sender.counters.bytes_sent += bytes;

    // Wire latency: no contention modeled in the switch fabric.
    co_await scheduler_->delay(params_.latency);

    // RX serialization at the receiver.
    co_await receiver.rx.acquire();
    {
      sim::ResourceHold hold(receiver.rx);
      co_await scheduler_->delay(wire_time);
      receiver.counters.rx_busy += wire_time;
    }
    ++receiver.counters.messages_received;
    receiver.counters.bytes_received += bytes;
  }

  [[nodiscard]] const EndpointCounters& counters(EndpointId id) const {
    S3A_REQUIRE(id < endpoints_.size());
    return endpoints_[id]->counters;
  }

  /// Queue length at the receiver side of an endpoint (diagnostics).
  [[nodiscard]] std::size_t rx_queue_length(EndpointId id) const {
    S3A_REQUIRE(id < endpoints_.size());
    return endpoints_[id]->rx.queue_length();
  }

 private:
  struct Endpoint {
    explicit Endpoint(sim::Scheduler& scheduler) : tx(scheduler), rx(scheduler) {}
    sim::Resource tx;
    sim::Resource rx;
    EndpointCounters counters;
  };

  sim::Scheduler* scheduler_;
  LinkParams params_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::unique_ptr<sim::Resource> fabric_;  ///< null = non-blocking fabric
};

}  // namespace s3asim::net
