#pragma once

/// \file model.hpp
/// Network model parameters.  Defaults approximate the paper's testbed
/// interconnect: Myrinet-2000 (≈ 2 Gb/s links, single-digit-µs latency)
/// connecting compute nodes and PVFS2 I/O servers (§3.2).

#include <cstdint>

#include "sim/time.hpp"

namespace s3asim::net {

struct LinkParams {
  /// One-way wire latency per message.
  sim::Time latency = sim::microseconds(7.5);
  /// Per-NIC injection/ejection bandwidth in bytes/second.
  double bandwidth_bps = 230.0 * 1024 * 1024;
  /// Fixed per-message software overhead at each endpoint (MPI stack cost).
  sim::Time per_message_overhead = sim::microseconds(1.5);
  /// Switch-fabric capacity: the number of transfers that can cross the
  /// fabric simultaneously.  0 = non-blocking fabric (Myrinet-2000's Clos
  /// networks were close to full bisection); smaller values model an
  /// oversubscribed backplane that serializes concurrent wire crossings.
  std::uint32_t fabric_concurrent_transfers = 0;

  [[nodiscard]] static LinkParams myrinet2000() noexcept { return {}; }

  /// A deliberately slow network for tests that need visible transfer times.
  [[nodiscard]] static LinkParams slow_test_network() noexcept {
    LinkParams params;
    params.latency = sim::microseconds(100);
    params.bandwidth_bps = 1.0 * 1024 * 1024;
    params.per_message_overhead = 0;
    return params;
  }
};

/// Identifies an endpoint (a compute node NIC or an I/O-server NIC).
using EndpointId = std::uint32_t;

}  // namespace s3asim::net
