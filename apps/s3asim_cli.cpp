/// s3asim — the command-line driver.
///
/// See apps/cli_usage.hpp for the full option list (kept in sync with the
/// parser below by tests/core/test_cli_usage.cpp).  Highlights:
///   --trace-json FILE    Chrome-trace-event JSON export (Perfetto)
///   --metrics-json FILE  per-run metrics manifest (s3asim-metrics-v1)
///   --jobs N             N concurrent replicas, bit-identity verified
///   --fault SPEC         fault injection ("crash:at=T" => resume-from-flush)
///
/// Exit status: 0 on success with a verified output file, 1 otherwise.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_usage.hpp"
#include "core/config_loader.hpp"
#include "core/simulation.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/schema.hpp"
#include "trace/trace.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

namespace {

void print_usage() { std::puts(s3asim::cli::kUsageText); }

/// The per-run manifest (`--metrics-json`): schema tag, config echo, trace
/// drop count, and the registry snapshot.  Validated by
/// `obs::validate_metrics_manifest` (tests + obs_validate + CI).
std::string render_manifest(const s3asim::core::SimConfig& config,
                            std::uint32_t groups,
                            const s3asim::core::RunStats& stats,
                            const s3asim::trace::TraceLog* trace_log,
                            const s3asim::obs::Registry& registry) {
  using namespace s3asim;
  util::JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(obs::kMetricsSchemaName);
  json.key("run");
  json.begin_object();
  json.key("strategy");
  json.value(core::strategy_name(config.strategy));
  json.key("nprocs");
  json.value(static_cast<std::uint64_t>(config.nprocs));
  json.key("groups");
  json.value(static_cast<std::uint64_t>(groups));
  json.key("query_sync");
  json.value(config.query_sync);
  json.key("compute_speed");
  json.value(config.compute_speed);
  json.key("wall_seconds");
  json.value(stats.wall_seconds);
  json.key("events");
  json.value(stats.events);
  json.key("file_exact");
  json.value(stats.file_exact);
  json.end_object();
  json.key("trace");
  json.begin_object();
  json.key("intervals_dropped");
  json.value(trace_log != nullptr ? trace_log->dropped() : std::uint64_t{0});
  json.end_object();
  json.key("metrics");
  registry.write_json(json);
  json.end_object();
  return json.str();
}

void print_effective_config(const s3asim::core::SimConfig& config) {
  using namespace s3asim;
  std::printf("nprocs            = %u\n", config.nprocs);
  std::printf("strategy          = %s\n", core::strategy_name(config.strategy));
  std::printf("query_sync        = %s\n", config.query_sync ? "true" : "false");
  std::printf("compute_speed     = %g\n", config.compute_speed);
  std::printf("queries_per_flush = %u\n", config.queries_per_flush);
  std::printf("sync_after_write  = %s\n",
              config.sync_after_write ? "true" : "false");
  std::printf("query_count       = %u\n", config.workload.query_count);
  std::printf("fragment_count    = %u\n", config.workload.fragment_count);
  std::printf("result_count      = [%u, %u]\n", config.workload.result_count_min,
              config.workload.result_count_max);
  std::printf("seed              = %llu\n",
              static_cast<unsigned long long>(config.workload.seed));
  std::printf("database_bytes    = %s\n",
              util::format_bytes(config.workload.database_bytes).c_str());
  std::printf("worker_memory     = %s\n",
              util::format_bytes(config.worker_memory_bytes).c_str());
  std::printf("servers x strip   = %u x %s\n",
              config.model.pfs.layout.server_count(),
              util::format_bytes(config.model.pfs.layout.strip_size()).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s3asim;
  util::set_log_level(util::LogLevel::Warn);

  std::string config_path;
  std::vector<std::string> overrides;
  std::string trace_path;
  std::string trace_json_path;
  std::string metrics_json_path;
  std::string json_path;
  std::string fault_spec;
  std::string fault_timeout;
  bool want_gantt = false;
  bool print_config_only = false;
  std::uint32_t groups = 1;
  unsigned jobs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* option) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", option);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--procs") {
      overrides.push_back("nprocs = " + next_value("--procs"));
    } else if (arg == "--strategy") {
      overrides.push_back("strategy = " + next_value("--strategy"));
    } else if (arg == "--sync") {
      overrides.push_back("query_sync = true");
    } else if (arg == "--speed") {
      overrides.push_back("compute_speed = " + next_value("--speed"));
    } else if (arg == "--arrival-rate") {
      overrides.push_back("arrival_rate = " + next_value("--arrival-rate"));
    } else if (arg == "--arrival-trace") {
      overrides.push_back("arrival_trace = " + next_value("--arrival-trace"));
    } else if (arg == "--admit-policy") {
      overrides.push_back("admit_policy = " + next_value("--admit-policy"));
    } else if (arg == "--admit-depth") {
      overrides.push_back("admit_depth = " + next_value("--admit-depth"));
    } else if (arg == "--engine") {
      overrides.push_back("engine = " + next_value("--engine"));
    } else if (arg == "--engine-threads") {
      overrides.push_back("engine_threads = " + next_value("--engine-threads"));
    } else if (arg == "--cache-size") {
      overrides.push_back("cache_capacity = " + next_value("--cache-size"));
    } else if (arg == "--cache-block") {
      overrides.push_back("cache_block = " + next_value("--cache-block"));
    } else if (arg == "--token-granularity") {
      overrides.push_back("token_granularity = " +
                          next_value("--token-granularity"));
    } else if (arg == "--worker-classes") {
      overrides.push_back("worker_classes = " + next_value("--worker-classes"));
    } else if (arg == "--joins") {
      overrides.push_back("joins = " + next_value("--joins"));
    } else if (arg == "--elastic") {
      overrides.push_back("elastic = true");
    } else if (arg == "--min-workers") {
      overrides.push_back("min_workers = " + next_value("--min-workers"));
    } else if (arg == "--autoscale-target") {
      overrides.push_back("autoscale_target = " +
                          next_value("--autoscale-target"));
    } else if (arg == "--read-method") {
      overrides.push_back("read_method = " + next_value("--read-method"));
    } else if (arg == "--sieve-buffer") {
      overrides.push_back("sieve_buffer = " + next_value("--sieve-buffer"));
    } else if (arg == "--trace") {
      trace_path = next_value("--trace");
    } else if (arg == "--trace-json") {
      trace_json_path = next_value("--trace-json");
    } else if (arg == "--metrics-json") {
      metrics_json_path = next_value("--metrics-json");
    } else if (arg == "--gantt") {
      want_gantt = true;
    } else if (arg == "--groups") {
      groups = static_cast<std::uint32_t>(std::atoi(next_value("--groups").c_str()));
    } else if (arg == "--jobs") {
      const int value = std::atoi(next_value("--jobs").c_str());
      if (value < 1 || value > 64) {
        std::fprintf(stderr, "error: --jobs expects 1..64\n");
        return 1;
      }
      jobs = static_cast<unsigned>(value);
    } else if (arg == "--fault") {
      fault_spec = next_value("--fault");
    } else if (arg == "--fault-timeout") {
      fault_timeout = next_value("--fault-timeout");
    } else if (arg == "--json") {
      json_path = next_value("--json");
    } else if (arg == "--set") {
      std::string setting = next_value("--set");
      const auto equals = setting.find('=');
      if (equals == std::string::npos) {
        std::fprintf(stderr, "error: --set expects key=value\n");
        return 1;
      }
      setting.replace(equals, 1, " = ");
      overrides.push_back(setting);
    } else if (arg == "--print-config") {
      print_config_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 1;
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      std::fprintf(stderr, "error: more than one config file\n");
      return 1;
    }
  }

  // Compose: file contents first, command-line overrides appended (the
  // key=value parser rejects duplicates, so strip overridden lines first).
  std::string text;
  if (!config_path.empty()) {
    std::ifstream input(config_path);
    if (!input) {
      std::fprintf(stderr, "error: cannot open %s\n", config_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << input.rdbuf();
    text = buffer.str();
  }
  for (const auto& line : overrides) {
    const std::string key = line.substr(0, line.find(' '));
    // Drop any earlier definition of the same key (first token before '=').
    std::istringstream all(text);
    std::ostringstream kept;
    std::string existing;
    while (std::getline(all, existing)) {
      const auto first = existing.find_first_not_of(" \t");
      if (first != std::string::npos) {
        auto end = existing.find_first_of(" \t=", first);
        if (end == std::string::npos) end = existing.size();
        if (existing.substr(first, end - first) == key) continue;
      }
      kept << existing << '\n';
    }
    // Prepend (a trailing append could land inside a histogram section).
    text = line + "\n" + kept.str();
  }

  core::SimConfig config;
  try {
    config = core::load_config(text);
    if (!fault_spec.empty()) config.fault = fault::parse_fault_plan(fault_spec);
    if (!fault_timeout.empty())
      config.fault_detection_timeout = fault::parse_time(fault_timeout);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  if (print_config_only) {
    print_effective_config(config);
    return 0;
  }

  trace::TraceLog trace;
  obs::Registry registry;
  const bool want_trace =
      want_gantt || !trace_path.empty() || !trace_json_path.empty();
  trace::TraceLog* trace_ptr = want_trace ? &trace : nullptr;
  obs::Registry* metrics_ptr = metrics_json_path.empty() ? nullptr : &registry;
  const core::Observability observe{trace_ptr, metrics_ptr};
  if (!config.fault.empty())
    std::printf("fault plan            : %s\n", config.fault.describe().c_str());
  if (jobs > 1 && config.fault.crash_at != fault::kNever) {
    std::fprintf(stderr, "error: --jobs > 1 is not supported with a crash plan\n");
    return 1;
  }

  // Replica determinism self-check (--jobs N): N-1 extra copies of the run
  // execute concurrently *without* observability; their statistics must be
  // bit-identical to the instrumented primary — simultaneously exercising
  // the determinism contract and the zero-perturbation guarantee of the
  // observability layer (DESIGN.md §8).
  std::vector<std::thread> replicas;
  std::vector<std::string> replica_stats(jobs > 1 ? jobs - 1 : 0);
  std::vector<std::string> replica_errors(replica_stats.size());
  for (std::size_t r = 0; r < replica_stats.size(); ++r) {
    replicas.emplace_back([&, r] {
      try {
        const core::RunStats copy =
            groups > 1 ? core::run_hybrid_simulation(config, groups)
                       : core::run_simulation(config);
        replica_stats[r] = copy.to_json();
      } catch (const std::exception& error) {
        replica_errors[r] = error.what();
      }
    });
  }

  core::RunStats stats;
  const auto host_start = std::chrono::steady_clock::now();
  try {
    if (config.fault.crash_at != fault::kNever) {
      // Whole-run crash: rerun from the last durably flushed query batch.
      if (groups > 1) {
        std::fprintf(stderr,
                     "error: crash/resume is not supported with --groups\n");
        return 1;
      }
      const core::ResumeOutcome outcome =
          core::run_with_resume(config, observe);
      if (outcome.crashed) {
        std::printf(
            "crashed at %.3f s; resumed from query %u "
            "(%.3f s lost + %.3f s rerun = %.3f s total)\n",
            outcome.crashed_seconds, outcome.resume_query,
            outcome.crashed_seconds, outcome.resumed_seconds,
            outcome.total_seconds);
        stats = outcome.resume_query < config.workload.query_count
                    ? outcome.resumed
                    : outcome.full;
      } else {
        std::printf("crash time is past the end of the run; nothing lost\n");
        stats = outcome.full;
      }
    } else {
      stats = groups > 1
                  ? core::run_hybrid_simulation(config, groups, observe)
                  : core::run_simulation(config, observe);
    }
  } catch (const std::exception& error) {
    for (auto& replica : replicas) replica.join();
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  for (auto& replica : replicas) replica.join();
  if (jobs > 1) {
    const std::string reference = stats.to_json();
    bool identical = true;
    for (std::size_t r = 0; r < replica_stats.size(); ++r) {
      if (!replica_errors[r].empty()) {
        std::fprintf(stderr, "error: replica %zu failed: %s\n", r + 2,
                     replica_errors[r].c_str());
        identical = false;
      } else if (replica_stats[r] != reference) {
        std::fprintf(stderr,
                     "error: replica %zu diverged from the primary run "
                     "(determinism violation)\n",
                     r + 2);
        identical = false;
      }
    }
    if (!identical) return 1;
    std::printf("determinism check     : %u replicas bit-identical\n", jobs);
  }

  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();

  std::printf("%s\n", stats.phase_table().c_str());
  std::printf("%s\n", stats.summary().c_str());
  std::printf("scheduler events      : %llu (%.2f M events/s host)\n",
              static_cast<unsigned long long>(stats.events),
              host_seconds > 0.0
                  ? static_cast<double>(stats.events) / host_seconds / 1e6
                  : 0.0);
  if (stats.db_bytes_read > 0)
    std::printf("database streamed     : %s\n",
                util::format_bytes(stats.db_bytes_read).c_str());
  const core::FaultStats& faults = stats.faults;
  if (faults.workers_died + faults.workers_retired + faults.tasks_reassigned +
          faults.scores_dropped + faults.duplicate_completions +
          faults.repaired_bytes >
      0) {
    std::printf(
        "faults                : %llu died, %llu retired, %llu reassigned, "
        "%llu dropped, %llu duplicates, %s repaired\n",
        static_cast<unsigned long long>(faults.workers_died),
        static_cast<unsigned long long>(faults.workers_retired),
        static_cast<unsigned long long>(faults.tasks_reassigned),
        static_cast<unsigned long long>(faults.scores_dropped),
        static_cast<unsigned long long>(faults.duplicate_completions),
        util::format_bytes(faults.repaired_bytes).c_str());
  }

  if (stats.serving.enabled) {
    const core::TenantServingStats& all = stats.serving.overall;
    std::printf(
        "serving               : %llu offered, %llu shed, %llu completed; "
        "latency p50 %.3f s p95 %.3f s p99 %.3f s; goodput %.2f q/s\n",
        static_cast<unsigned long long>(all.offered),
        static_cast<unsigned long long>(all.shed),
        static_cast<unsigned long long>(all.completed), all.p50_seconds,
        all.p95_seconds, all.p99_seconds, stats.serving.goodput_qps);
  }

  if (want_gantt) std::printf("\n%s", trace.render_gantt(110).c_str());
  if (!trace_path.empty()) {
    trace.export_csv(trace_path);
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  if (!trace_json_path.empty()) {
    try {
      trace.export_chrome_json(trace_json_path);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
    std::printf("chrome trace written to %s (open in ui.perfetto.dev)\n",
                trace_json_path.c_str());
  }
  if (!metrics_json_path.empty()) {
    std::ofstream out(metrics_json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   metrics_json_path.c_str());
      return 1;
    }
    out << render_manifest(config, groups, stats, trace_ptr, registry) << '\n';
    std::printf("metrics manifest written to %s\n", metrics_json_path.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << stats.to_json() << '\n';
    std::printf("stats written to %s\n", json_path.c_str());
  }
  return stats.file_exact ? 0 : 1;
}
