/// obs_validate — offline schema validator for the observability artifacts.
///
/// Usage:
///   obs_validate [--trace FILE.json] [--metrics FILE.json]
///
/// Parses each file with util::parse_json and checks it against the
/// corresponding schema (`obs::validate_chrome_trace` /
/// `obs::validate_metrics_manifest`).  Prints one line per violation and
/// exits nonzero if any file fails to parse or validate.  CI runs this over
/// the quick-bench exports so a malformed trace or manifest fails the build
/// instead of a Perfetto session.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/schema.hpp"
#include "util/json.hpp"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream input(path);
  if (!input) return false;
  std::ostringstream buffer;
  buffer << input.rdbuf();
  *out = buffer.str();
  return true;
}

/// Validates one file; returns the number of problems found (0 = clean).
int check(const std::string& path, const char* what,
          std::vector<std::string> (*validate)(const s3asim::util::JsonValue&)) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "obs_validate: cannot open %s\n", path.c_str());
    return 1;
  }
  s3asim::util::JsonValue root;
  try {
    root = s3asim::util::parse_json(text);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "obs_validate: %s: parse error: %s\n", path.c_str(),
                 error.what());
    return 1;
  }
  const std::vector<std::string> problems = validate(root);
  for (const std::string& problem : problems)
    std::fprintf(stderr, "obs_validate: %s: %s\n", path.c_str(),
                 problem.c_str());
  if (problems.empty())
    std::printf("obs_validate: %s: valid %s\n", path.c_str(), what);
  return static_cast<int>(problems.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: obs_validate [--trace FILE.json] "
                   "[--metrics FILE.json]\n");
      return 2;
    }
  }
  if (trace_path.empty() && metrics_path.empty()) {
    std::fprintf(stderr,
                 "usage: obs_validate [--trace FILE.json] "
                 "[--metrics FILE.json]\n");
    return 2;
  }
  int problems = 0;
  if (!trace_path.empty())
    problems += check(trace_path, "chrome trace",
                      &s3asim::obs::validate_chrome_trace);
  if (!metrics_path.empty())
    problems += check(metrics_path, "metrics manifest",
                      &s3asim::obs::validate_metrics_manifest);
  return problems == 0 ? 0 : 1;
}
