/// obs_validate — offline schema validator for the observability artifacts.
///
/// Usage:
///   obs_validate [--trace FILE.json] [--metrics FILE.json] [--simulated-only]
///
/// Parses each file with util::parse_json and checks it against the
/// corresponding schema (`obs::validate_chrome_trace` /
/// `obs::validate_metrics_manifest`).  Prints one line per violation and
/// exits nonzero if any file fails to parse or validate.  CI runs this over
/// the quick-bench exports so a malformed trace or manifest fails the build
/// instead of a Perfetto session.
///
/// --simulated-only (requires --metrics) additionally prints the manifest
/// to stdout in canonical form — sorted keys, every "host."-prefixed
/// member dropped.  host.* is the namespace for host-clock/thread-placement
/// metrics (e.g. host.sched.pop_seconds, host.engine.steals), the only
/// nondeterministic manifest content; stripping it makes two runs of the
/// same config byte-identical, so determinism checks are a plain `diff`:
///
///   obs_validate --metrics a.json --simulated-only > a.sim.json

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/schema.hpp"
#include "util/json.hpp"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream input(path);
  if (!input) return false;
  std::ostringstream buffer;
  buffer << input.rdbuf();
  *out = buffer.str();
  return true;
}

/// Re-serializes `value` canonically: object keys in sorted order (the
/// parser already holds them sorted) and, when `strip_host` is set, every
/// object member whose key starts with "host." dropped — at any depth, so
/// the rule covers the metric sections without knowing their layout.
void write_canonical(const s3asim::util::JsonValue& value,
                     s3asim::util::JsonWriter& out, bool strip_host) {
  using Kind = s3asim::util::JsonValue::Kind;
  switch (value.kind()) {
    case Kind::Null:
      out.null();
      break;
    case Kind::Bool:
      out.value(value.as_bool());
      break;
    case Kind::Number:
      out.value(value.as_number());
      break;
    case Kind::String:
      out.value(value.as_string());
      break;
    case Kind::Array:
      out.begin_array();
      for (const auto& item : value.items())
        write_canonical(item, out, strip_host);
      out.end_array();
      break;
    case Kind::Object:
      out.begin_object();
      for (const auto& [key, member] : value.members()) {
        if (strip_host && key.rfind("host.", 0) == 0) continue;
        out.key(key);
        write_canonical(member, out, strip_host);
      }
      out.end_object();
      break;
  }
}

/// Validates one file; returns the number of problems found (0 = clean).
/// With `simulated_only`, additionally prints the canonical host.*-free
/// form to stdout (status lines go to stderr so stdout stays diff-clean).
int check(const std::string& path, const char* what,
          std::vector<std::string> (*validate)(const s3asim::util::JsonValue&),
          bool simulated_only = false) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "obs_validate: cannot open %s\n", path.c_str());
    return 1;
  }
  s3asim::util::JsonValue root;
  try {
    root = s3asim::util::parse_json(text);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "obs_validate: %s: parse error: %s\n", path.c_str(),
                 error.what());
    return 1;
  }
  const std::vector<std::string> problems = validate(root);
  for (const std::string& problem : problems)
    std::fprintf(stderr, "obs_validate: %s: %s\n", path.c_str(),
                 problem.c_str());
  if (!problems.empty()) return static_cast<int>(problems.size());
  if (simulated_only) {
    s3asim::util::JsonWriter out;
    write_canonical(root, out, /*strip_host=*/true);
    std::printf("%s\n", out.str().c_str());
    std::fprintf(stderr, "obs_validate: %s: valid %s\n", path.c_str(), what);
  } else {
    std::printf("obs_validate: %s: valid %s\n", path.c_str(), what);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: obs_validate [--trace FILE.json] [--metrics FILE.json] "
      "[--simulated-only]\n";
  std::string trace_path;
  std::string metrics_path;
  bool simulated_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--simulated-only") {
      simulated_only = true;
    } else {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
  }
  if (trace_path.empty() && metrics_path.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  if (simulated_only && metrics_path.empty()) {
    std::fprintf(stderr,
                 "obs_validate: --simulated-only needs --metrics (host.* "
                 "metrics only appear in the manifest)\n");
    return 2;
  }
  int problems = 0;
  if (!trace_path.empty())
    problems += check(trace_path, "chrome trace",
                      &s3asim::obs::validate_chrome_trace);
  if (!metrics_path.empty())
    problems += check(metrics_path, "metrics manifest",
                      &s3asim::obs::validate_metrics_manifest, simulated_only);
  return problems == 0 ? 0 : 1;
}
