#pragma once

/// \file cli_usage.hpp
/// The s3asim CLI's --help text, factored out so the golden test
/// (tests/core/test_cli_usage.cpp) can keep it in sync with the option
/// parser: every flag the parser accepts must appear here with one line of
/// help, and the test fails on drift in either direction.

namespace s3asim::cli {

inline constexpr char kUsageText[] =
    "usage: s3asim [options] [config-file]\n"
    "  --procs N           total ranks (master + workers)\n"
    "  --strategy NAME     MW | WW-POSIX | WW-List | WW-Coll | WW-CollList |\n"
    "                      WW-FilePerProc | WW-Aggr | WW-Sieve\n"
    "  --sync              per-query synchronization on\n"
    "  --speed X           compute-speed multiplier\n"
    "  --arrival-rate R    open-loop serving: Poisson arrivals at R queries\n"
    "                      per simulated second (default 0 = closed batch;\n"
    "                      tenants via --set \"tenants=a:rate=2|b:rate=1\")\n"
    "  --arrival-trace F   open-loop serving: replay arrivals from a CSV of\n"
    "                      \"t_seconds, tenant, query_size\" lines\n"
    "  --admit-policy P    admission-queue order: fifo | wfq | priority\n"
    "  --admit-depth N     bounded admission queue depth; arrivals beyond it\n"
    "                      are shed (default 64)\n"
    "  --engine MODE       DES executor: serial | parallel (the lookahead-\n"
    "                      windowed LP engine; simulated results are\n"
    "                      bit-identical either way — DESIGN.md section 9)\n"
    "  --engine-threads N  parallel-engine threads (default 0 = one per\n"
    "                      hardware thread)\n"
    "  --cache-size B      per-client write-back cache capacity (e.g. 64MiB;\n"
    "                      default 0 = caching off, byte-identical to\n"
    "                      direct dispatch)\n"
    "  --cache-block B     cache block size; must divide strip_size\n"
    "                      (default 64KiB)\n"
    "  --token-granularity B\n"
    "                      byte-range lease granularity; a multiple of\n"
    "                      --cache-block (default 1MiB)\n"
    "  --read-method M     noncontiguous database-read method: posix | list |\n"
    "                      sieve (needs db_chunk_bytes > 0; docs/IO_MODEL.md)\n"
    "  --sieve-buffer B    data-sieving buffer size, ROMIO ind_rd_buffer_size\n"
    "                      (default 4MiB)\n"
    "  --trace FILE.csv    export phase timeline CSV\n"
    "  --trace-json FILE   export Chrome-trace-event JSON (open in Perfetto\n"
    "                      or chrome://tracing; see docs/OBSERVABILITY.md)\n"
    "  --metrics-json FILE export the per-run metrics manifest\n"
    "                      (schema s3asim-metrics-v1: config echo + counters,\n"
    "                      gauges, histograms, trace drop count)\n"
    "  --gantt             print an ASCII timeline\n"
    "  --groups G          hybrid segmentation with G master/worker teams\n"
    "  --jobs N            run N concurrent replicas of the simulation and\n"
    "                      fail unless their statistics are bit-identical\n"
    "                      (determinism self-check; default 1 = off)\n"
    "  --fault SPEC        inject faults (kill/slow/delay/drop/server/crash\n"
    "                      clauses, ';'-separated; crash => resume-from-flush)\n"
    "  --fault-timeout T   failure-detector timeout (default 10s)\n"
    "  --json FILE.json    export full run statistics as JSON\n"
    "  --set key=value     override any config key (repeatable)\n"
    "  --print-config      show effective configuration and exit\n"
    "  --help              show this message";

}  // namespace s3asim::cli
