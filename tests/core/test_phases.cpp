#include "core/phases.hpp"

#include <gtest/gtest.h>

namespace {

using namespace s3asim::core;

TEST(PhaseTest, NamesMatchPaper) {
  EXPECT_STREQ(phase_name(Phase::Setup), "Setup");
  EXPECT_STREQ(phase_name(Phase::DataDistribution), "Data Distribution");
  EXPECT_STREQ(phase_name(Phase::Compute), "Compute");
  EXPECT_STREQ(phase_name(Phase::MergeResults), "Merge Results");
  EXPECT_STREQ(phase_name(Phase::GatherResults), "Gather Results");
  EXPECT_STREQ(phase_name(Phase::Io), "I/O");
  EXPECT_STREQ(phase_name(Phase::Sync), "Sync");
  EXPECT_STREQ(phase_name(Phase::Other), "Other");
}

TEST(PhaseTest, AllPhasesListsEight) {
  EXPECT_EQ(all_phases().size(), kPhaseCount);
}

TEST(PhaseTimersTest, Accumulates) {
  PhaseTimers timers;
  timers.add(Phase::Compute, 100);
  timers.add(Phase::Compute, 50);
  EXPECT_EQ(timers.get(Phase::Compute), 150);
  EXPECT_EQ(timers.get(Phase::Io), 0);
}

TEST(PhaseTimersTest, IgnoresNonPositiveDurations) {
  PhaseTimers timers;
  timers.add(Phase::Io, 0);
  timers.add(Phase::Io, -5);
  EXPECT_EQ(timers.get(Phase::Io), 0);
}

TEST(PhaseTimersTest, OtherAbsorbsRemainder) {
  PhaseTimers timers;
  timers.add(Phase::Compute, 300);
  timers.add(Phase::Io, 200);
  timers.finish(1000);
  EXPECT_EQ(timers.get(Phase::Other), 500);
  EXPECT_EQ(timers.total(), 1000);
}

TEST(PhaseTimersTest, OtherClampsAtZero) {
  PhaseTimers timers;
  timers.add(Phase::Compute, 300);
  timers.finish(200);  // over-attributed (rounding)
  EXPECT_EQ(timers.get(Phase::Other), 0);
}

TEST(PhaseTimersTest, SecondsConversion) {
  PhaseTimers timers;
  timers.add(Phase::Sync, s3asim::sim::seconds(2.5));
  EXPECT_DOUBLE_EQ(timers.seconds(Phase::Sync), 2.5);
}

TEST(PhaseTimersTest, AttributedExcludesOther) {
  PhaseTimers timers;
  timers.add(Phase::Compute, 10);
  timers.finish(100);
  EXPECT_EQ(timers.attributed(), 10);
}

}  // namespace
