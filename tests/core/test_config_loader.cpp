#include "core/config_loader.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/serving.hpp"
#include "core/simulation.hpp"

namespace {

using namespace s3asim::core;
namespace sim = s3asim::sim;

/// Writes `text` to a fresh file under the test temp dir and returns its path.
std::string write_temp_trace(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(ConfigLoaderTest, EmptyTextYieldsPaperConfig) {
  const auto loaded = load_config("");
  const auto paper = paper_config();
  EXPECT_EQ(loaded.nprocs, paper.nprocs);
  EXPECT_EQ(loaded.strategy, paper.strategy);
  EXPECT_EQ(loaded.workload.query_count, paper.workload.query_count);
  EXPECT_EQ(loaded.model.pfs.layout.strip_size(),
            paper.model.pfs.layout.strip_size());
}

TEST(ConfigLoaderTest, BasicOverrides) {
  const auto config = load_config(
      "nprocs = 24\nstrategy = MW\nquery_sync = true\ncompute_speed = 3.2\n");
  EXPECT_EQ(config.nprocs, 24u);
  EXPECT_EQ(config.strategy, Strategy::MW);
  EXPECT_TRUE(config.query_sync);
  EXPECT_DOUBLE_EQ(config.compute_speed, 3.2);
}

TEST(ConfigLoaderTest, WorkloadKeys) {
  const auto config = load_config(
      "query_count = 7\nfragment_count = 16\nresult_count_min = 10\n"
      "result_count_max = 20\nmin_result_bytes = 1KiB\nseed = 99\n"
      "database_bytes = 2GiB\n");
  EXPECT_EQ(config.workload.query_count, 7u);
  EXPECT_EQ(config.workload.fragment_count, 16u);
  EXPECT_EQ(config.workload.result_count_min, 10u);
  EXPECT_EQ(config.workload.result_count_max, 20u);
  EXPECT_EQ(config.workload.min_result_bytes, 1024u);
  EXPECT_EQ(config.workload.seed, 99u);
  EXPECT_EQ(config.workload.database_bytes, 2ull << 30);
}

TEST(ConfigLoaderTest, ModelKeys) {
  const auto config = load_config(
      "strip_size = 32KiB\nserver_count = 8\nnet_latency_us = 12\n"
      "disk_per_pair_ms = 3\n");
  EXPECT_EQ(config.model.pfs.layout.strip_size(), 32768u);
  EXPECT_EQ(config.model.pfs.layout.server_count(), 8u);
  EXPECT_EQ(config.model.network.latency, s3asim::sim::microseconds(12));
  EXPECT_EQ(config.model.pfs.disk.per_pair, s3asim::sim::milliseconds(3));
}

TEST(ConfigLoaderTest, HintsKeys) {
  const auto config = load_config(
      "cb_nodes = 4\ncb_buffer_size = 1MiB\ncollective_algorithm = list_sync\n");
  EXPECT_EQ(config.hints.cb_nodes, 4u);
  EXPECT_EQ(config.hints.cb_buffer_size, 1u << 20);
  EXPECT_EQ(config.hints.collective_algorithm,
            s3asim::mpiio::CollectiveAlgorithm::ListWithSync);
}

TEST(ConfigLoaderTest, HistogramSectionsApply) {
  const auto config = load_config(
      "[histogram query]\n100 200 1.0\n[histogram database]\n300 400 1.0\n");
  EXPECT_EQ(config.workload.query_histogram.min_value(), 100u);
  EXPECT_EQ(config.workload.database_histogram.max_value(), 400u);
}

TEST(ConfigLoaderTest, UnknownKeyRejected) {
  EXPECT_THROW((void)load_config("not_a_real_key = 5\n"),
               std::invalid_argument);
}

TEST(ConfigLoaderTest, UnknownStrategyRejected) {
  EXPECT_THROW((void)load_config("strategy = turbo\n"), std::invalid_argument);
}

// Error-path contract: a typo'd strategy name produces an actionable
// message — it echoes the offending spelling and lists every canonical one.
TEST(ConfigLoaderTest, UnknownStrategyMessageListsCanonicalSpellings) {
  try {
    (void)load_config("strategy = turbo\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("turbo"), std::string::npos) << message;
    for (const Strategy strategy : kAllStrategies)
      EXPECT_NE(message.find(strategy_name(strategy)), std::string::npos)
          << "message should list " << strategy_name(strategy) << ": "
          << message;
  }
}

TEST(ConfigLoaderTest, UnknownKeyMessageNamesTheKey) {
  try {
    (void)load_config("not_a_real_key = 5\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("not_a_real_key"),
              std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, AggregatorFaninKey) {
  const auto config = load_config("strategy = WW-Aggr\naggregator_fanin = 8\n");
  EXPECT_EQ(config.strategy, Strategy::WWAggr);
  EXPECT_EQ(config.aggregator_fanin, 8u);
  // 0 is valid ("one group spanning all workers").
  EXPECT_EQ(load_config("aggregator_fanin = 0\n").aggregator_fanin, 0u);
}

TEST(ConfigLoaderTest, NegativeAggregatorFaninRejected) {
  try {
    (void)load_config("aggregator_fanin = -3\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("aggregator_fanin"),
              std::string::npos)
        << error.what();
  }
}

// Strategy/fault-mode conflict: WW-Aggr's lockstep aggregation cannot
// tolerate perturbed workers, and the rejection must say so and point at a
// usable alternative rather than deadlock at runtime.
TEST(ConfigLoaderTest, AggrWithWorkerFaultConflictIsActionable) {
  auto config = load_config("nprocs = 6\nstrategy = WW-Aggr\n");
  config.fault.kills.push_back({2, s3asim::sim::seconds(1)});
  try {
    (void)run_simulation(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("WW-Aggr"), std::string::npos) << message;
    EXPECT_NE(message.find("deadlock"), std::string::npos) << message;
    EXPECT_NE(message.find("WW-List"), std::string::npos) << message;
  }
}

TEST(ConfigLoaderTest, AggrWithServerFaultStillRuns) {
  auto config = load_config(
      "nprocs = 6\nstrategy = WW-Aggr\nquery_count = 3\nfragment_count = 6\n"
      "result_count_min = 10\nresult_count_max = 20\n");
  config.fault.servers.push_back(
      {/*server=*/0, /*from=*/s3asim::sim::seconds(0),
       /*service_factor=*/2.0, /*stall=*/s3asim::sim::Time{0}});
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact);
}

TEST(ConfigLoaderTest, UnknownCollectiveRejected) {
  EXPECT_THROW((void)load_config("collective_algorithm = psychic\n"),
               std::invalid_argument);
}

TEST(ConfigLoaderTest, MissingFileThrows) {
  EXPECT_THROW((void)load_config_file("/no/such/file.conf"),
               std::runtime_error);
}

TEST(ConfigLoaderTest, ServingKeysParse) {
  const auto config = load_config(
      "arrival_rate = 2.5\nadmit_policy = wfq\nadmit_depth = 16\n"
      "inflight_watermark = 4MiB\n"
      "tenants = gold:rate=2,weight=3|bronze:priority=1\n");
  EXPECT_DOUBLE_EQ(config.serving.arrival_rate_hz, 2.5);
  EXPECT_EQ(config.serving.policy, AdmitPolicy::WeightedFair);
  EXPECT_EQ(config.serving.admit_depth, 16u);
  EXPECT_EQ(config.serving.inflight_watermark_bytes, 4u << 20);
  ASSERT_EQ(config.serving.tenants.size(), 2u);
  EXPECT_EQ(config.serving.tenants[0].name, "gold");
  EXPECT_DOUBLE_EQ(config.serving.tenants[0].rate_hz, 2.0);
  EXPECT_DOUBLE_EQ(config.serving.tenants[0].weight, 3.0);
  EXPECT_EQ(config.serving.tenants[1].name, "bronze");
  EXPECT_EQ(config.serving.tenants[1].priority, 1u);
  EXPECT_TRUE(config.serving.enabled());
  EXPECT_FALSE(load_config("").serving.enabled());
}

TEST(ConfigLoaderTest, ArrivalTraceLoadsAndRewritesWorkload) {
  const std::string path = write_temp_trace(
      "good_trace.csv",
      "# t, tenant, query_size\n"
      "0.0, gold, 2000\n"
      "0.5, bronze, 1500\n"
      "0.5, gold, 3000\n");
  const auto config = load_config("arrival_trace = " + path + "\n");
  EXPECT_TRUE(config.serving.enabled());
  ASSERT_EQ(config.serving.trace_arrivals.size(), 3u);
  EXPECT_EQ(config.workload.query_count, 3u);
  ASSERT_EQ(config.workload.query_lengths.size(), 3u);
  EXPECT_EQ(config.workload.query_lengths[0], 2000u);
  EXPECT_EQ(config.workload.query_lengths[2], 3000u);
  // Tenants auto-register in first-appearance order when none are declared.
  ASSERT_EQ(config.serving.tenants.size(), 2u);
  EXPECT_EQ(config.serving.tenants[0].name, "gold");
  EXPECT_EQ(config.serving.tenants[1].name, "bronze");
  EXPECT_EQ(config.serving.trace_arrivals[1].second, 1u);
}

// Error-path contract: a trace whose timestamps go backwards is rejected
// with the 1-based line number and an actionable fix.
TEST(ConfigLoaderTest, ArrivalTraceRejectsNonMonotonicTimestamps) {
  const std::string path = write_temp_trace(
      "unsorted_trace.csv", "1.0, a, 100\n0.5, a, 100\n");
  try {
    (void)load_config("arrival_trace = " + path + "\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
    EXPECT_NE(message.find("sorted by time"), std::string::npos) << message;
  }
}

// Error-path contract: an undeclared tenant id names the offender, lists
// the declared set, and says how to fix it.
TEST(ConfigLoaderTest, ArrivalTraceRejectsUnknownTenant) {
  const std::string path =
      write_temp_trace("ghost_trace.csv", "0.5, ghost, 100\n");
  try {
    (void)load_config("tenants = gold:rate=1|bronze:rate=1\narrival_trace = " +
                      path + "\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("ghost"), std::string::npos) << message;
    EXPECT_NE(message.find("gold"), std::string::npos) << message;
    EXPECT_NE(message.find("bronze"), std::string::npos) << message;
    EXPECT_NE(message.find("'tenants' key"), std::string::npos) << message;
  }
}

TEST(ConfigLoaderTest, ArrivalTraceRejectsMalformedRows) {
  const std::string missing_field =
      write_temp_trace("short_trace.csv", "0.5, a\n");
  EXPECT_THROW((void)load_config("arrival_trace = " + missing_field + "\n"),
               std::invalid_argument);
  const std::string negative_time =
      write_temp_trace("negative_trace.csv", "-1.0, a, 100\n");
  EXPECT_THROW((void)load_config("arrival_trace = " + negative_time + "\n"),
               std::invalid_argument);
  const std::string bad_size =
      write_temp_trace("size_trace.csv", "0.5, a, 0\n");
  EXPECT_THROW((void)load_config("arrival_trace = " + bad_size + "\n"),
               std::invalid_argument);
  const std::string all_comments =
      write_temp_trace("empty_trace.csv", "# nothing\n\n");
  EXPECT_THROW((void)load_config("arrival_trace = " + all_comments + "\n"),
               std::invalid_argument);
}

TEST(ConfigLoaderTest, MissingArrivalTraceFileThrows) {
  EXPECT_THROW((void)load_config("arrival_trace = /no/such/trace.csv\n"),
               std::runtime_error);
}

TEST(ConfigLoaderTest, BadServingKeysRejected) {
  EXPECT_THROW((void)load_config("admit_depth = 0\n"), std::invalid_argument);
  EXPECT_THROW((void)load_config("admit_policy = psychic\n"),
               std::invalid_argument);
  EXPECT_THROW((void)load_config("tenants = gold:turbo=1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)load_config("tenants = gold:rate=1|gold:rate=2\n"),
               std::invalid_argument);
}

TEST(ConfigLoaderTest, EngineKeysParse) {
  EXPECT_EQ(load_config("").engine.mode, EngineMode::Serial);
  EXPECT_EQ(load_config("engine = serial\n").engine.mode, EngineMode::Serial);
  const auto parallel = load_config("engine = parallel\nengine_threads = 4\n");
  EXPECT_EQ(parallel.engine.mode, EngineMode::Parallel);
  EXPECT_EQ(parallel.engine.threads, 4u);
  EXPECT_EQ(parallel.engine.resolved_threads(), 4u);
  // threads = 0 defers to the host's hardware concurrency.
  EXPECT_GE(load_config("engine = parallel\n").engine.resolved_threads(), 1u);
}

TEST(ConfigLoaderTest, BadEngineKeysRejected) {
  EXPECT_THROW((void)load_config("engine = turbo\n"), std::invalid_argument);
  EXPECT_THROW((void)load_config("engine_threads = -1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)load_config("engine_threads = 257\n"),
               std::invalid_argument);
}

TEST(ConfigLoaderTest, CacheKeysApply) {
  const auto config = load_config(
      "strip_size = 64KiB\ncache_capacity = 16MiB\ncache_block = 16KiB\n"
      "token_granularity = 64KiB\n");
  EXPECT_TRUE(config.model.pfs.cache.enabled());
  EXPECT_EQ(config.model.pfs.cache.capacity_bytes, 16u * 1024 * 1024);
  EXPECT_EQ(config.model.pfs.cache.block_bytes, 16u * 1024);
  EXPECT_EQ(config.model.pfs.cache.token_bytes, 64u * 1024);
}

TEST(ConfigLoaderTest, CacheOffByDefault) {
  EXPECT_FALSE(load_config("").model.pfs.cache.enabled());
}

TEST(ConfigLoaderTest, ReadPathKeysParse) {
  const auto config = load_config(
      "database_bytes = 32MiB\ndb_chunk_bytes = 4KiB\n"
      "read_method = sieve\nsieve_buffer = 512KiB\n");
  EXPECT_EQ(config.workload.db_chunk_bytes, 4u * 1024);
  EXPECT_EQ(config.read_method, s3asim::mpiio::NoncontigMethod::Sieve);
  EXPECT_EQ(config.hints.sieve_buffer_bytes, 512u * 1024);
  // Defaults: contiguous fragments, list reads, 4 MiB sieve buffer.
  const auto defaults = load_config("");
  EXPECT_EQ(defaults.workload.db_chunk_bytes, 0u);
  EXPECT_EQ(defaults.read_method, s3asim::mpiio::NoncontigMethod::ListIo);
  EXPECT_EQ(defaults.hints.sieve_buffer_bytes, 4u * 1024 * 1024);
}

TEST(ConfigLoaderTest, UnknownReadMethodRejected) {
  try {
    (void)load_config("read_method = mmap\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("read_method"), std::string::npos) << message;
    EXPECT_NE(message.find("sieve"), std::string::npos) << message;
  }
}

TEST(ConfigLoaderTest, ZeroSieveBufferRejectedNamingKey) {
  try {
    (void)load_config("sieve_buffer = 0\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("sieve_buffer"),
              std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, SieveBufferSmallerThanCacheBlockRejectedNamingBoth) {
  try {
    (void)load_config(
        "strip_size = 64KiB\ncache_capacity = 1MiB\ncache_block = 16KiB\n"
        "token_granularity = 64KiB\nsieve_buffer = 4KiB\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("sieve_buffer"), std::string::npos) << message;
    EXPECT_NE(message.find("cache_block"), std::string::npos) << message;
  }
}

TEST(ConfigLoaderTest, ZeroCacheCapacityRejectedNamingKey) {
  try {
    (void)load_config("cache_capacity = 0\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("cache_capacity"),
              std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, NegativeCacheCapacityRejectedNamingKey) {
  try {
    (void)load_config("cache_capacity = -4MiB\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("cache_capacity"),
              std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, CacheBlockMustDivideStripNamingKey) {
  try {
    (void)load_config(
        "strip_size = 64KiB\ncache_capacity = 1MiB\ncache_block = 24KiB\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("cache_block"), std::string::npos) << message;
    EXPECT_NE(message.find("strip_size"), std::string::npos) << message;
  }
}

TEST(ConfigLoaderTest, TokenGranularityFinerThanBlockRejectedNamingKey) {
  try {
    (void)load_config(
        "cache_capacity = 1MiB\ncache_block = 64KiB\n"
        "token_granularity = 16KiB\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("token_granularity"),
              std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, CacheCapacityBelowOneBlockRejectedNamingKey) {
  try {
    (void)load_config("cache_capacity = 4KiB\ncache_block = 16KiB\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("cache_capacity"),
              std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, LoadedConfigActuallyRuns) {
  const auto config = load_config(
      "nprocs = 4\nquery_count = 3\nfragment_count = 6\n"
      "result_count_min = 20\nresult_count_max = 40\nstrategy = WW-List\n"
      "strip_size = 4KiB\nserver_count = 4\n"
      "[histogram query]\n500 2000 1.0\n[histogram database]\n500 4000 1.0\n");
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact);
  EXPECT_EQ(stats.nprocs, 4u);
}

// ---------------------------------------------------------------------------
// Membership keys (ISSUE 10): worker_classes / joins / elastic knobs parse
// into MembershipConfig, and malformed specs die with messages that name
// the offending clause.
// ---------------------------------------------------------------------------

TEST(ConfigLoaderTest, WorkerClassesParsed) {
  const auto config = load_config(
      "worker_classes = standard:speed=1,count=3|accel:speed=4,count=1\n");
  ASSERT_EQ(config.membership.classes.size(), 2u);
  EXPECT_EQ(config.membership.classes[0].name, "standard");
  EXPECT_DOUBLE_EQ(config.membership.classes[0].speed, 1.0);
  EXPECT_EQ(config.membership.classes[0].count, 3u);
  EXPECT_EQ(config.membership.classes[1].name, "accel");
  EXPECT_DOUBLE_EQ(config.membership.classes[1].speed, 4.0);
  EXPECT_EQ(config.membership.classes[1].count, 1u);
  EXPECT_TRUE(config.membership.heterogeneous());
  EXPECT_FALSE(config.membership.dynamic());
}

TEST(ConfigLoaderTest, JoinsParsedWithTimeGrammar) {
  const auto config =
      load_config("joins = worker=4,at=2s|worker=7,at=1500ms\n");
  ASSERT_EQ(config.membership.joins.size(), 2u);
  EXPECT_EQ(config.membership.joins[0].rank, 4u);
  EXPECT_EQ(config.membership.joins[0].at, sim::seconds(2));
  EXPECT_EQ(config.membership.joins[1].rank, 7u);
  EXPECT_EQ(config.membership.joins[1].at, sim::milliseconds(1500));
  EXPECT_TRUE(config.membership.dynamic());
}

TEST(ConfigLoaderTest, ElasticKnobsParsed) {
  const auto config = load_config(
      "elastic = true\nmin_workers = 2\nautoscale_target = 6\n"
      "autoscale_cooldown_ms = 500\n");
  EXPECT_TRUE(config.membership.elastic);
  EXPECT_EQ(config.membership.min_workers, 2u);
  EXPECT_DOUBLE_EQ(config.membership.autoscale_target, 6.0);
  EXPECT_EQ(config.membership.autoscale_cooldown, sim::milliseconds(500));
}

TEST(ConfigLoaderTest, WorkerClassZeroSpeedRejectedNamingClass) {
  try {
    (void)load_config("worker_classes = standard:speed=1|slow:speed=0\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("slow"), std::string::npos) << message;
    EXPECT_NE(message.find("speed"), std::string::npos) << message;
  }
}

TEST(ConfigLoaderTest, WorkerClassUnknownFieldListsExpected) {
  try {
    (void)load_config("worker_classes = standard:rate=2\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("rate"), std::string::npos) << message;
    EXPECT_NE(message.find("expected"), std::string::npos) << message;
  }
}

TEST(ConfigLoaderTest, DuplicateWorkerClassNameRejected) {
  try {
    (void)load_config("worker_classes = a:speed=1|a:speed=2\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("duplicate"), std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, JoinWithoutTimeRejected) {
  try {
    (void)load_config("joins = worker=4\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("at"), std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, DuplicateJoinWorkerRejected) {
  try {
    (void)load_config("joins = worker=4,at=1|worker=4,at=2\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("duplicate"), std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, JoinClassWithoutDeclaredClassesRejected) {
  try {
    (void)load_config("joins = worker=4,at=2,class=gpu\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("worker 4"), std::string::npos) << message;
    EXPECT_NE(message.find("worker_classes"), std::string::npos) << message;
  }
}

TEST(ConfigLoaderTest, NegativeAutoscaleTargetRejectedNamingKey) {
  try {
    (void)load_config("autoscale_target = -3\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("autoscale_target"),
              std::string::npos)
        << error.what();
  }
}

TEST(ConfigLoaderTest, NegativeMinWorkersRejectedNamingKey) {
  try {
    (void)load_config("min_workers = -1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("min_workers"), std::string::npos)
        << error.what();
  }
}

// validate_membership runs at simulation entry (the loader cannot see the
// strategy/membership interaction until both are final).
TEST(ConfigLoaderTest, JoinNamingUnknownSpeedClassListsKnownClasses) {
  auto config = load_config(
      "nprocs = 5\nworker_classes = std:speed=1\n"
      "joins = worker=4,at=2,class=gpu\n");
  try {
    (void)run_simulation(config);
    FAIL() << "expected failure naming the unknown class";
  } catch (const std::exception& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("gpu"), std::string::npos) << message;
    EXPECT_NE(message.find("known classes: std"), std::string::npos) << message;
  }
}

TEST(ConfigLoaderTest, ElasticWithCollectiveStrategyRejectedWithAlternatives) {
  auto config = test_config();
  config.strategy = Strategy::WWColl;
  config.serving.arrival_rate_hz = 2.0;
  config.membership.elastic = true;
  config.membership.min_workers = 1;
  try {
    (void)run_simulation(config);
    FAIL() << "expected failure naming the strategy conflict";
  } catch (const std::exception& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("WW-Coll"), std::string::npos) << message;
    EXPECT_NE(message.find("WW-List"), std::string::npos) << message;
  }
}

}  // namespace
