#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace s3asim::core;

constexpr Strategy kAllStrategies[] = {Strategy::MW, Strategy::WWPosix,
                                       Strategy::WWList, Strategy::WWColl,
                                       Strategy::WWCollList};

// ---------------------------------------------------------------------------
// Every strategy × sync mode: output-file exactness and phase accounting.
// ---------------------------------------------------------------------------

class StrategyModeTest
    : public ::testing::TestWithParam<std::tuple<Strategy, bool>> {};

TEST_P(StrategyModeTest, OutputFileCoveredExactlyOnce) {
  const auto [strategy, sync] = GetParam();
  auto config = test_config();
  config.strategy = strategy;
  config.query_sync = sync;
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.overlap_count, 0u);
  EXPECT_EQ(stats.bytes_covered, stats.output_bytes);
}

TEST_P(StrategyModeTest, PhaseTimesSumToWall) {
  const auto [strategy, sync] = GetParam();
  auto config = test_config();
  config.strategy = strategy;
  config.query_sync = sync;
  const auto stats = run_simulation(config);
  for (const auto& rank : stats.ranks) {
    EXPECT_EQ(rank.phases.total(), rank.wall);
    EXPECT_LE(s3asim::sim::to_seconds(rank.wall), stats.wall_seconds + 1e-9);
  }
}

TEST_P(StrategyModeTest, AllTasksProcessedExactlyOnce) {
  const auto [strategy, sync] = GetParam();
  auto config = test_config();
  config.strategy = strategy;
  config.query_sync = sync;
  const auto stats = run_simulation(config);
  std::uint64_t tasks = 0;
  for (const auto& rank : stats.ranks) tasks += rank.tasks_processed;
  EXPECT_EQ(tasks, static_cast<std::uint64_t>(config.workload.query_count) *
                       config.workload.fragment_count);
  EXPECT_EQ(stats.ranks[0].tasks_processed, 0u);  // master never searches
}

TEST_P(StrategyModeTest, WriterRolesMatchStrategy) {
  const auto [strategy, sync] = GetParam();
  auto config = test_config();
  config.strategy = strategy;
  config.query_sync = sync;
  const auto stats = run_simulation(config);
  std::uint64_t master_bytes = stats.ranks[0].bytes_written;
  std::uint64_t worker_bytes = 0;
  for (std::size_t rank = 1; rank < stats.ranks.size(); ++rank)
    worker_bytes += stats.ranks[rank].bytes_written;
  if (strategy == Strategy::MW) {
    EXPECT_EQ(master_bytes, stats.output_bytes);
    EXPECT_EQ(worker_bytes, 0u);
  } else {
    EXPECT_EQ(master_bytes, 0u);
    EXPECT_EQ(worker_bytes, stats.output_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyModeTest,
    ::testing::Combine(::testing::ValuesIn(kAllStrategies),
                       ::testing::Bool()),
    [](const auto& param_info) {
      std::string name = strategy_name(std::get<0>(param_info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name + (std::get<1>(param_info.param) ? "_sync" : "_nosync");
    });

// ---------------------------------------------------------------------------
// Determinism and process-count invariance
// ---------------------------------------------------------------------------

TEST(SimulationTest, IdenticalConfigGivesIdenticalWall) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  const auto a = run_simulation(config);
  const auto b = run_simulation(config);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.fs.server_requests, b.fs.server_requests);
}

TEST(SimulationTest, OutputIdenticalAcrossProcessCounts) {
  // §3.3: "Although we use different numbers of processors, the results are
  // always identical since they are pseudo-randomly generated."
  std::uint64_t reference = 0;
  for (const std::uint32_t nprocs : {2u, 3u, 5u, 9u}) {
    auto config = test_config();
    config.nprocs = nprocs;
    config.strategy = Strategy::WWList;
    const auto stats = run_simulation(config);
    EXPECT_TRUE(stats.file_exact);
    if (reference == 0) reference = stats.output_bytes;
    EXPECT_EQ(stats.output_bytes, reference);
  }
}

TEST(SimulationTest, OutputIdenticalAcrossStrategies) {
  std::uint64_t reference = 0;
  for (const Strategy strategy : kAllStrategies) {
    auto config = test_config();
    config.strategy = strategy;
    const auto stats = run_simulation(config);
    if (reference == 0) reference = stats.output_bytes;
    EXPECT_EQ(stats.output_bytes, reference) << strategy_name(strategy);
  }
}

TEST(SimulationTest, MinimumTwoProcsEnforced) {
  auto config = test_config();
  config.nprocs = 1;
  EXPECT_THROW((void)run_simulation(config), std::invalid_argument);
}

TEST(SimulationTest, ComputeSpeedScalesComputePhase) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  config.compute_speed = 1.0;
  const auto base = run_simulation(config);
  config.compute_speed = 4.0;
  const auto fast = run_simulation(config);
  const double base_compute = base.worker_mean_seconds(Phase::Compute);
  const double fast_compute = fast.worker_mean_seconds(Phase::Compute);
  EXPECT_NEAR(fast_compute, base_compute / 4.0, base_compute * 0.05);
  EXPECT_LT(fast.wall_seconds, base.wall_seconds);
}

TEST(SimulationTest, MoreWorkersReduceWallClock) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  config.nprocs = 2;
  const auto small = run_simulation(config);
  config.nprocs = 9;
  const auto large = run_simulation(config);
  EXPECT_LT(large.wall_seconds, small.wall_seconds);
}

// ---------------------------------------------------------------------------
// Flush batching ("after every n queries") and write-at-end
// ---------------------------------------------------------------------------

class FlushBatchTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FlushBatchTest, BatchedFlushStillExact) {
  for (const Strategy strategy : kAllStrategies) {
    auto config = test_config();
    config.strategy = strategy;
    config.queries_per_flush = GetParam();
    const auto stats = run_simulation(config);
    EXPECT_TRUE(stats.file_exact)
        << strategy_name(strategy) << " flush=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, FlushBatchTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(FlushBatchTest, WriteAtEndReducesWriteCalls) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  const auto per_query = run_simulation(config);
  config.queries_per_flush = config.workload.query_count;  // mpiBLAST 1.2 mode
  const auto at_end = run_simulation(config);
  EXPECT_TRUE(at_end.file_exact);
  std::uint64_t per_query_writes = 0, at_end_writes = 0;
  for (const auto& rank : per_query.ranks) per_query_writes += rank.writes_issued;
  for (const auto& rank : at_end.ranks) at_end_writes += rank.writes_issued;
  EXPECT_LT(at_end_writes, per_query_writes);
}

TEST(FlushBatchTest, MwBatchingWritesFewerLargerCalls) {
  auto config = test_config();
  config.strategy = Strategy::MW;
  const auto per_query = run_simulation(config);
  config.queries_per_flush = 2;
  const auto batched = run_simulation(config);
  EXPECT_TRUE(batched.file_exact);
  EXPECT_LT(batched.ranks[0].writes_issued, per_query.ranks[0].writes_issued);
  EXPECT_EQ(batched.ranks[0].bytes_written, per_query.ranks[0].bytes_written);
}

// ---------------------------------------------------------------------------
// Tracing integration
// ---------------------------------------------------------------------------

TEST(SimulationTest, TraceRecordsAllRanksAndPhases) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  s3asim::trace::TraceLog trace;
  const auto stats = run_simulation(config, &trace);
  EXPECT_GT(trace.size(), 0u);
  // Every rank appears.
  std::vector<bool> seen(config.nprocs, false);
  for (const auto& interval : trace.intervals()) {
    ASSERT_LT(interval.rank, config.nprocs);
    seen[interval.rank] = true;
    EXPECT_GE(interval.duration(), 0);
  }
  for (std::uint32_t rank = 0; rank < config.nprocs; ++rank)
    EXPECT_TRUE(seen[rank]) << "rank " << rank << " missing from trace";
  // Compute intervals only on workers.
  for (const auto& interval : trace.intervals()) {
    if (interval.category == "Compute") {
      EXPECT_NE(interval.rank, 0u);
    }
  }
  EXPECT_TRUE(stats.file_exact);
}

TEST(SimulationTest, SyncAfterWriteTogglesServerSyncs) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  config.sync_after_write = true;
  const auto with_sync = run_simulation(config);
  config.sync_after_write = false;
  const auto without_sync = run_simulation(config);
  EXPECT_GT(with_sync.fs.server_syncs, without_sync.fs.server_syncs);
  EXPECT_TRUE(without_sync.file_exact);
}

TEST(SimulationTest, JsonExportIsWellFormedAndComplete) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  const auto stats = run_simulation(config);
  const std::string json = stats.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"strategy\":\"WW-List\""), std::string::npos);
  EXPECT_NE(json.find("\"exact\":true"), std::string::npos);
  EXPECT_NE(json.find("\"Data Distribution\""), std::string::npos);
  // One rank entry per process.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"rank\":", pos)) != std::string::npos) {
    ++count;
    pos += 7;
  }
  EXPECT_EQ(count, config.nprocs);
}

}  // namespace
