/// Unit tests for the fragment-affinity LRU (core/fragment_cache.hpp):
/// hit/miss accounting, LRU eviction order, recency refresh on touch, and
/// the degenerate zero-capacity cache.  The master mirrors each worker's
/// cache by replaying the same touch sequence, so this deterministic
/// behavior is load-bearing for affinity scheduling.

#include "core/fragment_cache.hpp"

#include <gtest/gtest.h>

namespace {

using s3asim::core::FragmentCache;

TEST(FragmentCacheTest, FirstTouchMissesThenHits) {
  FragmentCache cache(2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.touch(7));  // cold miss
  EXPECT_TRUE(cache.contains(7));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.touch(7));  // now cached
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FragmentCacheTest, EvictsLeastRecentlyUsed) {
  FragmentCache cache(2);
  cache.touch(1);
  cache.touch(2);
  EXPECT_FALSE(cache.touch(3));  // evicts 1 (oldest)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(FragmentCacheTest, TouchRefreshesRecency) {
  FragmentCache cache(2);
  cache.touch(1);
  cache.touch(2);
  EXPECT_TRUE(cache.touch(1));   // 1 becomes most recent; 2 is now oldest
  EXPECT_FALSE(cache.touch(3));  // evicts 2, not 1
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(FragmentCacheTest, SizeNeverExceedsCapacity) {
  FragmentCache cache(3);
  EXPECT_EQ(cache.capacity(), 3u);
  for (std::uint32_t fragment = 0; fragment < 10; ++fragment) {
    EXPECT_FALSE(cache.touch(fragment));  // distinct fragments: all misses
    EXPECT_LE(cache.size(), cache.capacity());
  }
  EXPECT_EQ(cache.size(), 3u);
  // Only the three most recent survive.
  EXPECT_TRUE(cache.contains(7));
  EXPECT_TRUE(cache.contains(8));
  EXPECT_TRUE(cache.contains(9));
  EXPECT_FALSE(cache.contains(6));
}

TEST(FragmentCacheTest, ZeroCapacityNeverCaches) {
  FragmentCache cache(0);
  EXPECT_FALSE(cache.touch(4));
  EXPECT_FALSE(cache.touch(4));  // still a miss: nothing is ever retained
  EXPECT_FALSE(cache.contains(4));
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
