#include <gtest/gtest.h>

#include "core/simulation.hpp"

/// Tests for the WW-FilePerProc (N-N) extension strategy: workers append to
/// private files immediately; the master assembles the final file at the
/// end.

namespace {

using namespace s3asim::core;

SimConfig nn_config() {
  auto config = test_config();
  config.strategy = Strategy::WWFilePerProcess;
  return config;
}

TEST(FilePerProcessTest, FinalFileVerifiesExactly) {
  for (const bool sync : {false, true}) {
    auto config = nn_config();
    config.query_sync = sync;
    const auto stats = run_simulation(config);
    EXPECT_TRUE(stats.file_exact) << (sync ? "sync" : "nosync");
    EXPECT_EQ(stats.overlap_count, 0u);
  }
}

TEST(FilePerProcessTest, DoubleWriteVolume) {
  // N-N writes everything twice: once into private files, once merged.
  const auto stats = run_simulation(nn_config());
  std::uint64_t worker_bytes = 0;
  for (std::size_t rank = 1; rank < stats.ranks.size(); ++rank)
    worker_bytes += stats.ranks[rank].bytes_written;
  EXPECT_EQ(worker_bytes, stats.output_bytes);           // private appends
  EXPECT_EQ(stats.ranks[0].bytes_written, stats.output_bytes);  // the merge
  EXPECT_EQ(stats.fs.server_bytes, 2 * stats.output_bytes);
}

TEST(FilePerProcessTest, MergeReadsEveryPrivateByte) {
  const auto stats = run_simulation(nn_config());
  // db_bytes_read counts only the database file; use fs read counters
  // indirectly: the merge reads output_bytes back.
  EXPECT_TRUE(stats.file_exact);
}

TEST(FilePerProcessTest, AppendsAreContiguousCheapRequests) {
  // Private-file appends are contiguous, so the per-pair noncontiguous
  // penalty only strikes during the final merge — the run-time I/O phase of
  // workers should involve only ~1 pair per touched server per append.
  const auto nn = run_simulation(nn_config());
  auto list_config = nn_config();
  list_config.strategy = Strategy::WWList;
  const auto list = run_simulation(list_config);
  // Same final bytes; N-N moves twice the data yet needs comparable pairs
  // because appends coalesce.
  EXPECT_EQ(nn.output_bytes, list.output_bytes);
  EXPECT_TRUE(nn.file_exact);
}

TEST(FilePerProcessTest, PhaseSumsHold) {
  const auto stats = run_simulation(nn_config());
  for (const auto& rank : stats.ranks)
    EXPECT_EQ(rank.phases.total(), rank.wall);
}

TEST(FilePerProcessTest, DeterministicAndSeedStable) {
  const auto a = run_simulation(nn_config());
  const auto b = run_simulation(nn_config());
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
}

TEST(FilePerProcessTest, WorksUnderHybridSegmentation) {
  auto config = nn_config();
  config.nprocs = 8;
  const auto stats = run_hybrid_simulation(config, 2);
  EXPECT_TRUE(stats.file_exact);
}

TEST(FilePerProcessTest, ParseNames) {
  EXPECT_EQ(parse_strategy("WW-FilePerProc"), Strategy::WWFilePerProcess);
  EXPECT_EQ(parse_strategy("nn"), Strategy::WWFilePerProcess);
  EXPECT_TRUE(worker_writes(Strategy::WWFilePerProcess));
  EXPECT_FALSE(is_collective(Strategy::WWFilePerProcess));
}

}  // namespace
