#include <gtest/gtest.h>

#include "core/simulation.hpp"

/// Tests for the per-worker compute-speed heterogeneity knob ("variable
/// simulated compute speeds", §3).

namespace {

using namespace s3asim::core;

TEST(HeterogeneityTest, ZeroJitterIsHomogeneousBaseline) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  const auto base = run_simulation(config);
  config.compute_speed_jitter = 0.0;
  const auto again = run_simulation(config);
  EXPECT_DOUBLE_EQ(base.wall_seconds, again.wall_seconds);
}

TEST(HeterogeneityTest, JitterChangesPerWorkerComputeTimes) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  config.compute_speed_jitter = 0.5;
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact);
  // Workers must no longer have near-identical compute-per-task rates.
  std::vector<double> per_task;
  for (std::size_t rank = 1; rank < stats.ranks.size(); ++rank) {
    if (stats.ranks[rank].tasks_processed == 0) continue;
    per_task.push_back(stats.ranks[rank].phases.seconds(Phase::Compute) /
                       static_cast<double>(stats.ranks[rank].tasks_processed));
  }
  ASSERT_GE(per_task.size(), 2u);
  const auto [lo, hi] = std::minmax_element(per_task.begin(), per_task.end());
  EXPECT_GT(*hi, *lo * 1.05);
}

TEST(HeterogeneityTest, JitterIsDeterministic) {
  auto config = test_config();
  config.compute_speed_jitter = 0.3;
  const auto a = run_simulation(config);
  const auto b = run_simulation(config);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
}

TEST(HeterogeneityTest, DynamicSchedulingAbsorbsHeterogeneity) {
  // The master/worker pull model balances mixed-speed nodes: fast workers
  // process more tasks.
  auto config = test_config();
  config.strategy = Strategy::WWList;
  config.workload.query_count = 6;
  config.workload.fragment_count = 16;
  config.compute_speed_jitter = 0.6;
  const auto stats = run_simulation(config);
  std::uint64_t min_tasks = UINT64_MAX, max_tasks = 0;
  for (std::size_t rank = 1; rank < stats.ranks.size(); ++rank) {
    min_tasks = std::min(min_tasks, stats.ranks[rank].tasks_processed);
    max_tasks = std::max(max_tasks, stats.ranks[rank].tasks_processed);
  }
  EXPECT_GT(max_tasks, min_tasks);  // faster workers pulled more tasks
  EXPECT_TRUE(stats.file_exact);
}

TEST(HeterogeneityTest, WorksAcrossStrategiesAndSync) {
  for (const Strategy strategy : {Strategy::MW, Strategy::WWColl}) {
    auto config = test_config();
    config.strategy = strategy;
    config.query_sync = true;
    config.compute_speed_jitter = 0.4;
    const auto stats = run_simulation(config);
    EXPECT_TRUE(stats.file_exact) << strategy_name(strategy);
  }
}

}  // namespace
