#include "core/fasta_workload.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "bio/fasta.hpp"
#include "bio/generator.hpp"
#include "core/simulation.hpp"

namespace {

using namespace s3asim;
using core::apply_database_sequences;
using core::apply_query_sequences;
using core::workload_from_fasta;

std::vector<bio::Sequence> make_sequences(std::uint64_t count,
                                          std::uint64_t lo, std::uint64_t hi,
                                          std::uint64_t seed = 5) {
  bio::GeneratorConfig config;
  config.seed = seed;
  config.length_histogram = util::BoxHistogram{{{lo, hi, 1.0}}};
  return bio::generate_sequences(config, count);
}

TEST(FastaWorkloadTest, DatabaseStatisticsApplied) {
  core::WorkloadConfig config;
  const auto database = make_sequences(200, 500, 5'000);
  apply_database_sequences(config, database);
  EXPECT_GE(config.database_histogram.min_value(), 500u);
  EXPECT_LE(config.database_histogram.max_value(), 5'000u);
  const auto residues = bio::total_residues(database);
  EXPECT_GT(config.database_bytes, residues);           // + FASTA overhead
  EXPECT_LT(config.database_bytes, residues * 11 / 10);
}

TEST(FastaWorkloadTest, QueryStatisticsApplied) {
  core::WorkloadConfig config;
  const auto queries = make_sequences(12, 1'000, 2'000);
  apply_query_sequences(config, queries);
  EXPECT_EQ(config.query_count, 12u);
  EXPECT_GE(config.query_histogram.mean(), 900.0);
  EXPECT_LE(config.query_histogram.mean(), 2'100.0);
}

TEST(FastaWorkloadTest, EmptyInputRejected) {
  core::WorkloadConfig config;
  EXPECT_THROW(apply_database_sequences(config, {}), std::invalid_argument);
  EXPECT_THROW(apply_query_sequences(config, {}), std::invalid_argument);
}

TEST(FastaWorkloadTest, FileRoundTripAndRun) {
  const std::string db_path = ::testing::TempDir() + "/s3asim_wl_db.fa";
  const std::string query_path = ::testing::TempDir() + "/s3asim_wl_q.fa";
  bio::write_fasta_file(db_path, make_sequences(100, 300, 3'000, 7));
  bio::write_fasta_file(query_path, make_sequences(4, 800, 1'500, 9));

  auto base = core::test_config().workload;
  auto workload = workload_from_fasta(db_path, query_path, base);
  EXPECT_EQ(workload.query_count, 4u);
  EXPECT_GT(workload.database_bytes, 0u);

  // And the derived workload drives a full simulation.
  auto config = core::test_config();
  config.workload = workload;
  config.worker_memory_bytes = workload.database_bytes / 4;
  const auto stats = core::run_simulation(config);
  EXPECT_TRUE(stats.file_exact);
  EXPECT_GT(stats.db_bytes_read, 0u);

  std::remove(db_path.c_str());
  std::remove(query_path.c_str());
}

TEST(FastaWorkloadTest, MissingFilesThrow) {
  EXPECT_THROW((void)workload_from_fasta("/no/db.fa", "/no/q.fa"),
               std::runtime_error);
}

}  // namespace
