/// Tests for the native-LP cluster scale model (core/scale_model.hpp):
/// thread-count determinism (the engine's headline contract, exercised by
/// a model with ~30 genuinely concurrent LPs), cross-strategy sanity, and
/// config validation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scale_model.hpp"
#include "sim/time.hpp"

namespace {

using namespace s3asim;
using core::ScaleConfig;
using core::ScaleStats;
using core::Strategy;

/// Small but structurally faithful config: enough workers for real
/// aggregation groups and striping, tiny compute so tests stay quick.
ScaleConfig quick_config(Strategy strategy, bool sync = false) {
  ScaleConfig config;
  config.nprocs = 24;
  config.servers = 4;
  config.strategy = strategy;
  config.query_sync = sync;
  config.queries = 2;
  config.result_bytes_min = 32 * 1024;
  config.result_bytes_max = 64 * 1024;
  config.compute_min = sim::milliseconds(1);
  config.compute_max = sim::milliseconds(3);
  config.compute_slice = sim::microseconds(100);
  config.score_rounds_per_slice = 32;
  config.cb_nodes = 4;
  config.aggregator_fanin = 4;
  return config;
}

const std::vector<Strategy>& all_strategies() {
  static const std::vector<Strategy> strategies{
      Strategy::MW,         Strategy::WWPosix,
      Strategy::WWList,     Strategy::WWColl,
      Strategy::WWCollList, Strategy::WWFilePerProcess,
      Strategy::WWAggr,     Strategy::WWSieve,
  };
  return strategies;
}

TEST(ScaleModelTest, EveryStrategyRunsToQuiescence) {
  for (const Strategy strategy : all_strategies()) {
    const ScaleStats stats = run_scale_model(quick_config(strategy), 1);
    EXPECT_GT(stats.makespan_seconds, 0.0) << core::strategy_name(strategy);
    EXPECT_GT(stats.events, 0u) << core::strategy_name(strategy);
    EXPECT_GT(stats.windows, 0u) << core::strategy_name(strategy);
    EXPECT_GT(stats.cross_lp_messages, 0u) << core::strategy_name(strategy);
    EXPECT_EQ(stats.lp_count, 24u + 4u) << core::strategy_name(strategy);
  }
}

TEST(ScaleModelTest, ResultVolumeIsStrategyIndependent) {
  // The workload draw is a pure function of (seed, worker, query), so the
  // bytes produced must agree across strategies — only *where* they go
  // differs.
  const std::uint64_t reference =
      run_scale_model(quick_config(Strategy::WWList), 1).total_result_bytes;
  EXPECT_GT(reference, 0u);
  for (const Strategy strategy : all_strategies()) {
    const ScaleStats stats = run_scale_model(quick_config(strategy), 1);
    EXPECT_EQ(stats.total_result_bytes, reference)
        << core::strategy_name(strategy);
  }
}

TEST(ScaleModelTest, BitIdenticalAcrossThreadCounts) {
  // The acceptance contract: identical ScaleStats (full JSON, fingerprint
  // included) for any engine thread count, for every strategy and both
  // sync modes.
  for (const Strategy strategy : all_strategies()) {
    for (const bool sync : {false, true}) {
      const std::string baseline =
          run_scale_model(quick_config(strategy, sync), 1).to_json();
      for (const unsigned threads : {2u, 4u, 8u}) {
        const std::string parallel =
            run_scale_model(quick_config(strategy, sync), threads).to_json();
        EXPECT_EQ(parallel, baseline)
            << core::strategy_name(strategy) << " sync=" << sync << " at "
            << threads << " threads";
      }
    }
  }
}

TEST(ScaleModelTest, RepeatedParallelRunsAgree) {
  const std::string first =
      run_scale_model(quick_config(Strategy::WWAggr), 4).to_json();
  const std::string second =
      run_scale_model(quick_config(Strategy::WWAggr), 4).to_json();
  EXPECT_EQ(first, second);
}

TEST(ScaleModelTest, MasterFunnelIsSlowerThanWorkerWrites) {
  // The paper's core finding at scale: MW serializes every result through
  // the master, WW-List writes directly — MW must cost more wall-clock.
  const double mw =
      run_scale_model(quick_config(Strategy::MW), 1).makespan_seconds;
  const double ww =
      run_scale_model(quick_config(Strategy::WWList), 1).makespan_seconds;
  EXPECT_GT(mw, ww);
}

TEST(ScaleModelTest, QuerySyncNeverSpeedsARunUp) {
  for (const Strategy strategy : {Strategy::WWList, Strategy::MW}) {
    const double async =
        run_scale_model(quick_config(strategy, false), 1).makespan_seconds;
    const double sync =
        run_scale_model(quick_config(strategy, true), 1).makespan_seconds;
    EXPECT_GE(sync, async) << core::strategy_name(strategy);
  }
}

TEST(ScaleModelTest, InvalidConfigsRejected) {
  {
    ScaleConfig config = quick_config(Strategy::WWList);
    config.nprocs = 1;
    EXPECT_THROW((void)run_scale_model(config, 1), std::exception);
  }
  {
    ScaleConfig config = quick_config(Strategy::WWList);
    config.servers = 0;
    EXPECT_THROW((void)run_scale_model(config, 1), std::exception);
  }
  {
    ScaleConfig config = quick_config(Strategy::WWList);
    config.queries = 0;
    EXPECT_THROW((void)run_scale_model(config, 1), std::exception);
  }
  {
    ScaleConfig config = quick_config(Strategy::WWList);
    config.compute_slice = 0;
    EXPECT_THROW((void)run_scale_model(config, 1), std::exception);
  }
  {
    ScaleConfig config = quick_config(Strategy::WWList);
    config.result_bytes_max = config.result_bytes_min - 1;
    EXPECT_THROW((void)run_scale_model(config, 1), std::exception);
  }
}

TEST(ScaleModelTest, JsonIsCompleteAndStable) {
  const ScaleStats stats = run_scale_model(quick_config(Strategy::WWList), 2);
  const std::string json = stats.to_json();
  for (const char* key :
       {"makespan_seconds", "total_result_bytes", "events", "windows",
        "cross_lp_messages", "lp_count", "fingerprint"})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  EXPECT_EQ(json, stats.to_json());
}

}  // namespace
