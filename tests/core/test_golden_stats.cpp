/// Per-strategy golden statistics: one `test_config()` run per strategy
/// with every headline RunStats aggregate pinned exactly.  The simulator is
/// deterministic, so any change to these numbers is a behavior change in
/// that strategy's I/O path (or in the shared runtimes) and must be a
/// conscious diff here — this is the regression net under the pluggable
/// strategy registry.  To regenerate after an intentional change, print the
/// same aggregates from a `run_simulation(test_config())` loop over
/// `kAllStrategies` (WW-Aggr pinned at aggregator_fanin = 2).

#include <gtest/gtest.h>

#include <cstdint>

#include "core/simulation.hpp"

namespace {

using namespace s3asim::core;

struct Golden {
  Strategy strategy;
  double wall_seconds;
  std::uint64_t events;
  std::uint64_t tasks_processed;
  std::uint64_t output_bytes;
  std::uint64_t bytes_written;
  std::uint64_t writes_issued;
};

// clang-format off
constexpr Golden kGolden[] = {
    {Strategy::MW,               0.815129586, 1243ull, 32ull, 1079929ull, 1079929ull,  4ull},
    {Strategy::WWPosix,          1.301727590, 3951ull, 32ull, 1079929ull, 1079929ull, 16ull},
    {Strategy::WWList,           0.972346988, 2328ull, 32ull, 1079929ull, 1079929ull, 16ull},
    {Strategy::WWColl,           3.588998786, 2744ull, 32ull, 1079929ull, 1079929ull, 16ull},
    {Strategy::WWCollList,       1.104594724, 2470ull, 32ull, 1079929ull, 1079929ull, 16ull},
    // N-N writes everything twice: once to the private per-worker files,
    // once when the master assembles the final sorted file.
    {Strategy::WWFilePerProcess, 1.221314748, 3678ull, 32ull, 1079929ull, 2159858ull, 36ull},
    // fanin=2 over 4 workers: 2 aggregators issue the group writes.
    {Strategy::WWAggr,           0.909560712, 1761ull, 32ull, 1079929ull, 1079929ull,  8ull},
    // Sieving coalesces each flush's extents into one contiguous window
    // (per-query regions are dense: no holes, no RMW) — fewer OL pairs
    // than WW-List, hence the lower wall clock at this small scale.
    {Strategy::WWSieve,          0.831030930, 3008ull, 32ull, 1079929ull, 1079929ull, 16ull},
};
// clang-format on

TEST(GoldenStatsTest, EveryStrategyMatchesPinnedAggregates) {
  // Every enumerator must carry a pin — adding a strategy without extending
  // the table is a test failure, not a silent gap.
  ASSERT_EQ(std::size(kGolden), std::size(kAllStrategies));

  for (const Golden& golden : kGolden) {
    auto config = test_config();
    config.strategy = golden.strategy;
    if (golden.strategy == Strategy::WWAggr) config.aggregator_fanin = 2;
    const RunStats stats = run_simulation(config);

    SCOPED_TRACE(strategy_name(golden.strategy));
    EXPECT_TRUE(stats.file_exact);
    EXPECT_DOUBLE_EQ(stats.wall_seconds, golden.wall_seconds);
    EXPECT_EQ(stats.events, golden.events);
    EXPECT_EQ(stats.output_bytes, golden.output_bytes);

    std::uint64_t tasks = 0;
    std::uint64_t bytes = 0;
    std::uint64_t writes = 0;
    for (const RankStats& rank : stats.ranks) {
      tasks += rank.tasks_processed;
      bytes += rank.bytes_written;
      writes += rank.writes_issued;
    }
    EXPECT_EQ(tasks, golden.tasks_processed);
    EXPECT_EQ(bytes, golden.bytes_written);
    EXPECT_EQ(writes, golden.writes_issued);
  }
}

}  // namespace
