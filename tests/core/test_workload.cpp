#include "core/workload.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace s3asim::core;

WorkloadConfig small_workload() {
  WorkloadConfig config;
  config.seed = 99;
  config.query_count = 6;
  config.fragment_count = 16;
  config.result_count_min = 50;
  config.result_count_max = 100;
  config.min_result_bytes = 128;
  return config;
}

TEST(WorkloadTest, ResultCountWithinConfiguredRange) {
  WorkloadModel model(small_workload());
  for (std::uint32_t q = 0; q < 6; ++q) {
    const auto& workload = model.query(q);
    EXPECT_GE(workload.results.size(), 50u);
    EXPECT_LE(workload.results.size(), 100u);
  }
}

TEST(WorkloadTest, ResultsSortedByDescendingScore) {
  WorkloadModel model(small_workload());
  for (std::uint32_t q = 0; q < 6; ++q) {
    const auto& results = model.query(q).results;
    for (std::size_t i = 1; i < results.size(); ++i)
      EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

TEST(WorkloadTest, OffsetsArePrefixSums) {
  WorkloadModel model(small_workload());
  const auto& workload = model.query(0);
  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i < workload.results.size(); ++i) {
    EXPECT_EQ(workload.offsets[i], cursor);
    cursor += workload.results[i].bytes;
  }
  EXPECT_EQ(workload.total_bytes, cursor);
}

TEST(WorkloadTest, ByFragmentPartitionsAllResults) {
  WorkloadModel model(small_workload());
  const auto& workload = model.query(2);
  std::set<std::uint32_t> seen;
  for (const auto& indices : workload.by_fragment) {
    for (const std::uint32_t index : indices) {
      EXPECT_TRUE(seen.insert(index).second);
      EXPECT_LT(index, workload.results.size());
    }
  }
  EXPECT_EQ(seen.size(), workload.results.size());
}

TEST(WorkloadTest, FragmentResultBytesSumToRegion) {
  WorkloadModel model(small_workload());
  for (std::uint32_t q = 0; q < 6; ++q) {
    std::uint64_t total = 0;
    for (std::uint32_t f = 0; f < 16; ++f)
      total += model.fragment_result_bytes(q, f);
    EXPECT_EQ(total, model.query(q).total_bytes);
  }
}

TEST(WorkloadTest, RegionBasesAreConsistent) {
  WorkloadModel model(small_workload());
  EXPECT_EQ(model.region_base(0), 0u);
  for (std::uint32_t q = 1; q < 6; ++q) {
    EXPECT_EQ(model.region_base(q),
              model.region_base(q - 1) + model.query(q - 1).total_bytes);
  }
  EXPECT_EQ(model.total_output_bytes(),
            model.region_base(5) + model.query(5).total_bytes);
}

TEST(WorkloadTest, MinResultBytesRespected) {
  WorkloadModel model(small_workload());
  for (std::uint32_t q = 0; q < 6; ++q)
    for (const auto& result : model.query(q).results)
      EXPECT_GE(result.bytes, 128u);
}

TEST(WorkloadTest, GenerationOrderIndependent) {
  // Accessing query 5 before query 0 must not change either.
  WorkloadModel forward(small_workload());
  WorkloadModel backward(small_workload());
  const auto& f0 = forward.query(0);
  const auto& f5 = forward.query(5);
  const auto& b5 = backward.query(5);
  const auto& b0 = backward.query(0);
  ASSERT_EQ(f0.results.size(), b0.results.size());
  ASSERT_EQ(f5.results.size(), b5.results.size());
  for (std::size_t i = 0; i < f0.results.size(); ++i) {
    EXPECT_EQ(f0.results[i].score, b0.results[i].score);
    EXPECT_EQ(f0.results[i].bytes, b0.results[i].bytes);
    EXPECT_EQ(f0.results[i].fragment, b0.results[i].fragment);
  }
}

TEST(WorkloadTest, SeedChangesWorkload) {
  auto config_a = small_workload();
  auto config_b = small_workload();
  config_b.seed = 100;
  WorkloadModel a(config_a), b(config_b);
  EXPECT_NE(a.total_output_bytes(), b.total_output_bytes());
}

TEST(WorkloadTest, PaperWorkloadVolumeApproximates208MB) {
  WorkloadConfig config;  // paper defaults
  WorkloadModel model(config);
  const double mb = static_cast<double>(model.total_output_bytes()) / 1e6;
  // §3.3: "Each data point we present generated roughly 208 MBytes".
  EXPECT_GT(mb, 160.0);
  EXPECT_LT(mb, 260.0);
  // 20 queries × [1000, 2000] results.
  EXPECT_GE(model.total_result_count(), 20'000u);
  EXPECT_LE(model.total_result_count(), 40'000u);
}

TEST(WorkloadTest, RejectsBadConfig) {
  auto config = small_workload();
  config.result_count_min = 0;
  EXPECT_THROW(WorkloadModel{config}, std::invalid_argument);
  config = small_workload();
  config.result_count_min = 200;  // > max
  EXPECT_THROW(WorkloadModel{config}, std::invalid_argument);
  config = small_workload();
  config.query_count = 0;
  EXPECT_THROW(WorkloadModel{config}, std::invalid_argument);
  config = small_workload();
  config.size_scale = 0.0;
  EXPECT_THROW(WorkloadModel{config}, std::invalid_argument);
}

TEST(WorkloadTest, FragmentOutOfRangeRejected) {
  WorkloadModel model(small_workload());
  EXPECT_THROW((void)model.fragment_result_bytes(0, 16), std::invalid_argument);
}

class WorkloadSizeScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(WorkloadSizeScaleTest, OutputScalesRoughlyLinearly) {
  auto config = small_workload();
  config.size_scale = 1.0;
  WorkloadModel base(config);
  config.size_scale = GetParam();
  WorkloadModel scaled(config);
  const double ratio = static_cast<double>(scaled.total_output_bytes()) /
                       static_cast<double>(base.total_output_bytes());
  // The min_result_bytes floor keeps this from being perfectly linear.
  EXPECT_GT(ratio, GetParam() * 0.5);
  EXPECT_LT(ratio, GetParam() * 1.6 + 0.3);
}

INSTANTIATE_TEST_SUITE_P(Scales, WorkloadSizeScaleTest,
                         ::testing::Values(0.5, 2.0, 4.0));

}  // namespace
