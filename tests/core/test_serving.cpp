#include "core/serving.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "core/stats.hpp"
#include "core/workload.hpp"

namespace {

using namespace s3asim::core;

SimConfig serving_config() {
  auto config = test_config();
  config.workload.query_count = 12;
  config.serving.arrival_rate_hz = 2.0;
  return config;
}

// ---------------------------------------------------------------------------
// Arrival generation: the Poisson stream is part of the determinism
// contract — same (seed, serving config) => bit-identical arrivals.
// ---------------------------------------------------------------------------

TEST(ServingArrivalsTest, PoissonStreamIsDeterministic) {
  const auto config = serving_config();
  const auto first = generate_arrivals(config.serving, config.workload);
  const auto second = generate_arrivals(config.serving, config.workload);
  ASSERT_EQ(first.size(), config.workload.query_count);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t q = 0; q < first.size(); ++q) {
    EXPECT_EQ(first[q].at, second[q].at) << "arrival " << q;
    EXPECT_EQ(first[q].tenant, second[q].tenant) << "arrival " << q;
  }
}

TEST(ServingArrivalsTest, SeedChangesTheStream) {
  auto config = serving_config();
  const auto base = generate_arrivals(config.serving, config.workload);
  config.workload.seed += 1;
  const auto reseeded = generate_arrivals(config.serving, config.workload);
  ASSERT_EQ(base.size(), reseeded.size());
  bool any_difference = false;
  for (std::size_t q = 0; q < base.size(); ++q) {
    any_difference |= base[q].at != reseeded[q].at;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ServingArrivalsTest, ArrivalsSortedWithValidTenants) {
  auto config = serving_config();
  config.serving.tenants = parse_tenants("gold:rate=3|bronze:rate=1");
  const auto arrivals = generate_arrivals(config.serving, config.workload);
  ASSERT_EQ(arrivals.size(), config.workload.query_count);
  for (std::size_t q = 0; q < arrivals.size(); ++q) {
    EXPECT_GT(arrivals[q].at, 0);
    EXPECT_LT(arrivals[q].tenant, 2u);
    if (q > 0) {
      EXPECT_GE(arrivals[q].at, arrivals[q - 1].at);
    }
  }
}

TEST(ServingArrivalsTest, AggregateRateSplitsByTenantShares) {
  ServingConfig serving;
  serving.arrival_rate_hz = 4.0;
  serving.tenants = parse_tenants("a:rate=3|b:rate=1");
  const auto rates = tenant_rates(serving);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 3.0);
  EXPECT_DOUBLE_EQ(rates[1], 1.0);
}

// ---------------------------------------------------------------------------
// Admission queue policies.
// ---------------------------------------------------------------------------

std::vector<TenantConfig> two_tenants(double weight_a, double weight_b,
                                      std::uint32_t priority_a = 0,
                                      std::uint32_t priority_b = 0) {
  TenantConfig a;
  a.name = "a";
  a.weight = weight_a;
  a.priority = priority_a;
  TenantConfig b;
  b.name = "b";
  b.weight = weight_b;
  b.priority = priority_b;
  return {a, b};
}

TEST(AdmissionQueueTest, FifoPopsInAdmissionOrder) {
  AdmissionQueue queue(AdmitPolicy::Fifo, 8, two_tenants(1.0, 1.0));
  for (std::uint32_t q = 0; q < 6; ++q) {
    EXPECT_TRUE(queue.offer(q, q % 2, s3asim::sim::seconds(q)));
  }
  for (std::uint32_t q = 0; q < 6; ++q) {
    EXPECT_EQ(queue.pop().query, q);
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.shed_total(), 0u);
}

TEST(AdmissionQueueTest, WeightedFairFavorsHeavyTenant) {
  // Tenant a has 3x the weight of b; with alternating a/b admissions the
  // start-time fair queue serves a's backlog 3:1 ahead of b's.
  AdmissionQueue queue(AdmitPolicy::WeightedFair, 16, two_tenants(3.0, 1.0));
  // Queries 0,2,4,6 belong to a; 1,3,5,7 to b.
  for (std::uint32_t q = 0; q < 8; ++q) {
    EXPECT_TRUE(queue.offer(q, q % 2, 0));
  }
  std::vector<std::uint32_t> tenant_order;
  while (!queue.empty()) tenant_order.push_back(queue.pop().tenant);
  const std::vector<std::uint32_t> expected = {0, 0, 1, 0, 0, 1, 1, 1};
  EXPECT_EQ(tenant_order, expected);
}

TEST(AdmissionQueueTest, EqualWeightsDegradeToFifo) {
  AdmissionQueue wfq(AdmitPolicy::WeightedFair, 16, two_tenants(1.0, 1.0));
  for (std::uint32_t q = 0; q < 6; ++q) {
    EXPECT_TRUE(wfq.offer(q, q % 2, 0));
  }
  for (std::uint32_t q = 0; q < 6; ++q) {
    EXPECT_EQ(wfq.pop().query, q);
  }
}

TEST(AdmissionQueueTest, PriorityClassesPreempt) {
  // b is the high-priority class (lower number = served first); within a
  // class the order stays FIFO.
  AdmissionQueue queue(AdmitPolicy::Priority, 16, two_tenants(1.0, 1.0, 1, 0));
  for (std::uint32_t q = 0; q < 6; ++q) {
    EXPECT_TRUE(queue.offer(q, q % 2, 0));
  }
  std::vector<std::uint32_t> order;
  while (!queue.empty()) order.push_back(queue.pop().query);
  const std::vector<std::uint32_t> expected = {1, 3, 5, 0, 2, 4};
  EXPECT_EQ(order, expected);
}

TEST(AdmissionQueueTest, ShedsBeyondDepthAndCountsPerTenant) {
  AdmissionQueue queue(AdmitPolicy::Fifo, 2, two_tenants(1.0, 1.0));
  EXPECT_TRUE(queue.offer(0, 0, 0));
  EXPECT_TRUE(queue.offer(1, 1, 0));
  EXPECT_FALSE(queue.offer(2, 1, 0));  // full: shed
  EXPECT_FALSE(queue.offer(3, 1, 0));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.shed_total(), 2u);
  EXPECT_EQ(queue.shed_by_tenant()[0], 0u);
  EXPECT_EQ(queue.shed_by_tenant()[1], 2u);
  (void)queue.pop();
  EXPECT_TRUE(queue.offer(4, 0, 0));  // a pop frees a slot again
  EXPECT_EQ(queue.shed_total(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end serving runs.
// ---------------------------------------------------------------------------

TEST(ServingRunTest, ServesFullStreamBelowCapacity) {
  auto config = serving_config();
  config.serving.arrival_rate_hz = 0.5;  // well below capacity: no shedding
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  ASSERT_TRUE(stats.serving.enabled);
  EXPECT_EQ(stats.serving.overall.offered, config.workload.query_count);
  EXPECT_EQ(stats.serving.overall.shed, 0u);
  EXPECT_EQ(stats.serving.overall.completed, config.workload.query_count);
  EXPECT_GT(stats.serving.overall.p50_seconds, 0.0);
  EXPECT_GE(stats.serving.overall.p99_seconds,
            stats.serving.overall.p50_seconds);
  EXPECT_GT(stats.serving.goodput_qps, 0.0);
}

TEST(ServingRunTest, OverloadShedsButStaysExact) {
  auto config = serving_config();
  config.workload.query_count = 30;
  config.serving.arrival_rate_hz = 50.0;  // far past capacity
  config.serving.admit_depth = 2;
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_GT(stats.serving.overall.shed, 0u);
  EXPECT_EQ(stats.serving.overall.completed + stats.serving.overall.shed,
            stats.serving.overall.offered);
  // Shed queries never dispatch, so the output file only holds completed
  // queries' results — and still covers itself exactly.
  EXPECT_EQ(stats.serving.overall.offered, 30u);
}

TEST(ServingRunTest, RunsAreBitIdenticalAcrossConcurrentReplicas) {
  // The CLI's --jobs gate relies on this: a serving run's full statistics
  // JSON (arrivals, latencies, shed counts) must not depend on host
  // scheduling.  Run one replica on this thread and one on another.
  const auto config = serving_config();
  std::string other;
  std::thread replica(
      [&other, config] { other = run_simulation(config).to_json(); });
  const std::string mine = run_simulation(config).to_json();
  replica.join();
  EXPECT_EQ(mine, other);
}

TEST(ServingRunTest, PerTenantAccountingSumsToOverall) {
  auto config = serving_config();
  config.serving.tenants = parse_tenants("gold:rate=2,weight=3|bronze:rate=1");
  config.serving.policy = AdmitPolicy::WeightedFair;
  const auto stats = run_simulation(config);
  ASSERT_EQ(stats.serving.tenants.size(), 2u);
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  for (const auto& tenant : stats.serving.tenants) {
    offered += tenant.offered;
    completed += tenant.completed;
    shed += tenant.shed;
  }
  EXPECT_EQ(offered, stats.serving.overall.offered);
  EXPECT_EQ(completed, stats.serving.overall.completed);
  EXPECT_EQ(shed, stats.serving.overall.shed);
}

TEST(ServingRunTest, BackpressureBoundsInflightBytes) {
  auto config = serving_config();
  config.serving.arrival_rate_hz = 20.0;
  config.serving.inflight_watermark_bytes = 64 * 1024;
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  // Dispatch pauses at the watermark, so the peak overshoots by at most
  // the single region admitted while below it.
  const WorkloadModel workload(config.workload);
  std::uint64_t largest_region = 0;
  for (std::uint32_t q = 0; q < config.workload.query_count; ++q) {
    largest_region = std::max(largest_region, workload.query(q).total_bytes);
  }
  EXPECT_GT(stats.serving.inflight_peak_bytes, 0u);
  EXPECT_LT(stats.serving.inflight_peak_bytes,
            config.serving.inflight_watermark_bytes + largest_region);
}

TEST(ServingRunTest, ClosedBatchKeepsServingStatsSilent) {
  const auto stats = run_simulation(test_config());
  EXPECT_FALSE(stats.serving.enabled);
  EXPECT_EQ(stats.to_json().find("\"serving\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Configuration validation.
// ---------------------------------------------------------------------------

TEST(ServingValidationTest, RequiresPerQueryFlush) {
  auto config = serving_config();
  config.queries_per_flush = 4;
  EXPECT_THROW((void)run_simulation(config), std::invalid_argument);
}

TEST(ServingValidationTest, RejectsFaultPlans) {
  auto config = serving_config();
  config.fault.kills.push_back({2, s3asim::sim::seconds(1)});
  EXPECT_THROW((void)run_simulation(config), std::invalid_argument);
}

TEST(ServingValidationTest, ClosedBatchDriversRejectServing) {
  auto config = serving_config();
  EXPECT_THROW((void)run_hybrid_simulation(config, 1), std::invalid_argument);
  EXPECT_THROW((void)run_with_resume(config), std::invalid_argument);
}

TEST(ServingValidationTest, RejectsDegenerateTenantSets) {
  auto config = serving_config();
  config.serving.tenants = parse_tenants("a:rate=0|b:rate=0");
  EXPECT_THROW(validate_serving(config), std::invalid_argument);
  config.serving.tenants = parse_tenants("a:weight=0");
  EXPECT_THROW(validate_serving(config), std::invalid_argument);
}

}  // namespace
