#include <gtest/gtest.h>

#include "core/simulation.hpp"

/// Shape tests: the paper's qualitative findings (DESIGN.md §3) asserted on
/// the actual paper-scale workload.  These are the regression guard for the
/// calibration constants in ModelParams/DiskModel.

namespace {

using namespace s3asim::core;

RunStats run(Strategy strategy, std::uint32_t nprocs, bool sync,
             double speed = 1.0) {
  auto config = paper_config();
  config.strategy = strategy;
  config.nprocs = nprocs;
  config.query_sync = sync;
  config.compute_speed = speed;
  return run_simulation(config);
}

TEST(ShapeTest, NoSyncOrderingAtScale) {
  // Paper §4 at high process counts (no-sync):
  // WW-List < WW-POSIX < WW-Coll < MW.
  const auto list = run(Strategy::WWList, 96, false);
  const auto posix = run(Strategy::WWPosix, 96, false);
  const auto coll = run(Strategy::WWColl, 96, false);
  const auto mw = run(Strategy::MW, 96, false);
  EXPECT_LT(list.wall_seconds, posix.wall_seconds);
  EXPECT_LT(posix.wall_seconds, coll.wall_seconds);
  EXPECT_LT(coll.wall_seconds, mw.wall_seconds);
  // MW is worse by a large factor (paper: 364%; shape target: >2.5x).
  EXPECT_GT(mw.wall_seconds / list.wall_seconds, 2.5);
}

TEST(ShapeTest, WwListBestInBothModes) {
  // "WW-List beat all I/O methods in both no-sync and sync test cases."
  for (const bool sync : {false, true}) {
    const auto list = run(Strategy::WWList, 96, sync);
    for (const Strategy other :
         {Strategy::MW, Strategy::WWPosix, Strategy::WWColl}) {
      const auto stats = run(other, 96, sync);
      EXPECT_LT(list.wall_seconds, stats.wall_seconds * 1.02)
          << strategy_name(other) << (sync ? " sync" : " no-sync");
    }
  }
}

TEST(ShapeTest, MwInsensitiveToQuerySync) {
  // "The effect of forced synchronization to MW makes a negligible
  // performance difference (a maximum of 5%...)."
  const auto nosync = run(Strategy::MW, 96, false);
  const auto sync = run(Strategy::MW, 96, true);
  EXPECT_NEAR(sync.wall_seconds / nosync.wall_seconds, 1.0, 0.08);
}

TEST(ShapeTest, WwCollInsensitiveToQuerySync) {
  // "WW-Coll is at most affected by 6% in moving from no-sync to sync."
  const auto nosync = run(Strategy::WWColl, 96, false);
  const auto sync = run(Strategy::WWColl, 96, true);
  EXPECT_NEAR(sync.wall_seconds / nosync.wall_seconds, 1.0, 0.10);
}

TEST(ShapeTest, IndividualWwHurtBySync) {
  // WW-POSIX is "largely affected" and WW-List "moderately affected" by the
  // forced synchronization.
  const auto posix_nosync = run(Strategy::WWPosix, 96, false);
  const auto posix_sync = run(Strategy::WWPosix, 96, true);
  EXPECT_GT(posix_sync.wall_seconds, posix_nosync.wall_seconds * 1.15);

  const auto list_nosync = run(Strategy::WWList, 96, false);
  const auto list_sync = run(Strategy::WWList, 96, true);
  EXPECT_GT(list_sync.wall_seconds, list_nosync.wall_seconds * 1.10);
}

TEST(ShapeTest, SyncInflatesSyncAndDataDistributionPhases) {
  // §4: forced sync raises the sync phase AND the data distribution phase
  // for the individual worker-writing strategies.
  const auto nosync = run(Strategy::WWPosix, 96, false);
  const auto sync = run(Strategy::WWPosix, 96, true);
  EXPECT_GT(sync.worker_mean_seconds(Phase::Sync),
            nosync.worker_mean_seconds(Phase::Sync) + 1.0);
}

TEST(ShapeTest, MwFlatVersusComputeSpeed) {
  // "increasing the compute speed up to 25.6 times ... made less than a 2%
  // difference in overall execution time ... for MW" (64 procs).
  const auto slow = run(Strategy::MW, 64, false, 1.0);
  const auto fast = run(Strategy::MW, 64, false, 25.6);
  EXPECT_NEAR(fast.wall_seconds / slow.wall_seconds, 1.0, 0.08);
}

TEST(ShapeTest, WwListGainsFromComputeSpeed) {
  // The individual WW strategies "will strongly benefit from hardware or
  // software improvements on the compute phase."
  const auto slow = run(Strategy::WWList, 64, false, 0.4);
  const auto fast = run(Strategy::WWList, 64, false, 25.6);
  EXPECT_LT(fast.wall_seconds, slow.wall_seconds * 0.7);
}

TEST(ShapeTest, WwListBeatsMwByLargeFactorAtHighSpeed) {
  // Paper: 592% at compute speed 25.6 (shape target: > 3x).
  const auto mw = run(Strategy::MW, 64, false, 25.6);
  const auto list = run(Strategy::WWList, 64, false, 25.6);
  EXPECT_GT(mw.wall_seconds / list.wall_seconds, 3.0);
}

TEST(ShapeTest, ScalingFlattensBeyond32Procs) {
  // "Noticeable performance gains due to adding more workers slowed
  // considerably at about 32 processes."
  const auto p8 = run(Strategy::WWList, 8, false);
  const auto p32 = run(Strategy::WWList, 32, false);
  const auto p96 = run(Strategy::WWList, 96, false);
  const double early_gain = p8.wall_seconds / p32.wall_seconds;    // 8 → 32
  const double late_gain = p32.wall_seconds / p96.wall_seconds;    // 32 → 96
  EXPECT_GT(early_gain, 1.5);
  EXPECT_LT(late_gain, early_gain);
}

TEST(ShapeTest, IoPhaseDominatesAtScaleForWwList) {
  // Beyond ~32 procs "the I/O phase time was dominant".
  const auto stats = run(Strategy::WWList, 96, false);
  const double io = stats.worker_mean_seconds(Phase::Io);
  EXPECT_GT(io, stats.worker_mean_seconds(Phase::Compute));
  EXPECT_GT(io, stats.wall_seconds * 0.4);
}

TEST(ShapeTest, MwBottleneckIsMasterNotWorkers) {
  // MW at scale: workers starve in data distribution while the master is
  // saturated gathering/merging/writing.
  const auto stats = run(Strategy::MW, 96, false);
  EXPECT_GT(stats.worker_mean_seconds(Phase::DataDistribution),
            stats.wall_seconds * 0.5);
  const double master_busy = stats.master_seconds(Phase::GatherResults) +
                             stats.master_seconds(Phase::Io);
  EXPECT_GT(master_busy, stats.wall_seconds * 0.5);
}

TEST(ShapeTest, ListWithForcedSyncBeatsTwoPhaseCollective) {
  // §3.3/§5: "a collective I/O method could be implemented using list I/O
  // with a forced synchronization at the end of the I/O operation (similar
  // to our WW-List tests with query sync on)" — and indeed WW-List+sync
  // (paper: 40.24 s) beats WW-Coll+sync (45.54 s) at 96 processors.
  const auto two_phase_sync = run(Strategy::WWColl, 96, true);
  const auto list_sync = run(Strategy::WWList, 96, true);
  EXPECT_LT(list_sync.wall_seconds, two_phase_sync.wall_seconds);
}

TEST(ShapeTest, CollListAblationTracksTwoPhase) {
  // The WW-CollList extension keeps collective semantics (upcoming-query
  // blocking) while swapping two-phase for list I/O; it should land in the
  // same band as WW-Coll — the collective's cost is the synchronization,
  // not only the write method.
  const auto two_phase = run(Strategy::WWColl, 96, false);
  const auto coll_list = run(Strategy::WWCollList, 96, false);
  EXPECT_TRUE(coll_list.file_exact);
  EXPECT_NEAR(coll_list.wall_seconds / two_phase.wall_seconds, 1.0, 0.30);
}

TEST(ShapeTest, EveryPaperRunVerifiesExactly) {
  for (const std::uint32_t procs : {2u, 16u, 96u}) {
    const auto stats = run(Strategy::WWList, procs, false);
    EXPECT_TRUE(stats.file_exact) << procs;
    EXPECT_EQ(stats.overlap_count, 0u);
  }
}

}  // namespace
