#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/simulation.hpp"
#include "fault/fault.hpp"
#include "sim/time.hpp"

namespace {

using namespace s3asim::core;
namespace fault = s3asim::fault;
namespace sim = s3asim::sim;

[[nodiscard]] sim::Time fraction_of_wall(double wall_seconds, double fraction) {
  return static_cast<sim::Time>(std::llround(wall_seconds * fraction * 1e9));
}

/// A fault config tuned for the small test workload: detection fast enough
/// to keep tests quick, slow enough that a healthy worker's longest
/// search-plus-flush cycle (POSIX per-extent flushes are the worst) does
/// not trip it.
[[nodiscard]] SimConfig fault_test_config(Strategy strategy) {
  auto config = test_config();
  config.strategy = strategy;
  config.fault_detection_timeout = sim::seconds(2);
  return config;
}

constexpr Strategy kRecoveryStrategies[] = {
    Strategy::MW,     Strategy::WWPosix,     Strategy::WWList,
    Strategy::WWColl, Strategy::WWCollList,  Strategy::WWFilePerProcess,
};

// ---------------------------------------------------------------------------
// No-faults regression: the empty plan must not change anything.
// ---------------------------------------------------------------------------

TEST(FaultRegressionTest, EmptyPlanIsByteIdenticalToDefault) {
  auto config = test_config();
  const auto baseline = run_simulation(config);
  config.fault = fault::FaultPlan{};  // explicit empty plan
  const auto with_plan = run_simulation(config);
  EXPECT_EQ(baseline.to_json(), with_plan.to_json());
  EXPECT_EQ(with_plan.faults.workers_died, 0u);
  EXPECT_EQ(with_plan.faults.workers_retired, 0u);
  EXPECT_EQ(with_plan.faults.tasks_reassigned, 0u);
  EXPECT_EQ(with_plan.faults.scores_dropped, 0u);
  EXPECT_EQ(with_plan.faults.repaired_bytes, 0u);
}

TEST(FaultRegressionTest, HarmlessPlanMatchesBaselineClosely) {
  // factor=1 slowdown: zero perturbation, but it switches the master to the
  // recovery loop — results must agree with the failure-free loop (wall may
  // differ by a few control messages' worth of protocol slack).
  auto config = fault_test_config(Strategy::WWList);
  const auto baseline = run_simulation(config);
  config.fault = fault::parse_fault_plan("slow:worker=1,factor=1");
  const auto recovery = run_simulation(config);
  EXPECT_TRUE(recovery.file_exact) << recovery.summary();
  EXPECT_EQ(recovery.output_bytes, baseline.output_bytes);
  EXPECT_EQ(recovery.faults.workers_died, 0u);
  EXPECT_EQ(recovery.faults.workers_retired, 0u);
  EXPECT_NEAR(recovery.wall_seconds, baseline.wall_seconds,
              0.10 * baseline.wall_seconds);
}

// ---------------------------------------------------------------------------
// Worker death: every strategy must recover and still verify exactly.
// ---------------------------------------------------------------------------

class WorkerDeathTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(WorkerDeathTest, DeathAtHalfRunRecoversAndVerifies) {
  auto config = fault_test_config(GetParam());
  const auto baseline = run_simulation(config);
  config.fault.kills.push_back(
      fault::WorkerKill{1, fraction_of_wall(baseline.wall_seconds, 0.5)});
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.overlap_count, 0u);
  EXPECT_EQ(stats.bytes_covered, stats.output_bytes);
  EXPECT_EQ(stats.faults.workers_died, 1u);
  EXPECT_GE(stats.faults.workers_retired, 1u);
  // Losing a quarter of the workers mid-run costs time.
  EXPECT_GT(stats.wall_seconds, baseline.wall_seconds);
}

TEST_P(WorkerDeathTest, DeathBeforeFirstScoreRecoversAndVerifies) {
  auto config = fault_test_config(GetParam());
  // Die almost immediately: before the worker has submitted any scores.
  config.fault.kills.push_back(fault::WorkerKill{1, sim::milliseconds(1)});
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.overlap_count, 0u);
  EXPECT_EQ(stats.faults.workers_died, 1u);
  // Everything it was assigned must have been recomputed by survivors.
  std::uint64_t tasks = 0;
  for (const auto& rank : stats.ranks) tasks += rank.tasks_processed;
  EXPECT_GE(tasks, static_cast<std::uint64_t>(config.workload.query_count) *
                       config.workload.fragment_count);
}

TEST_P(WorkerDeathTest, DeathNearEndAfterScoresRecoversAndVerifies) {
  auto config = fault_test_config(GetParam());
  const auto baseline = run_simulation(config);
  // Die at 70% of the way to the last batch completion: scores for most
  // assignments are already submitted, but the death still lands before the
  // run ends (the recovery-capable master loop wakes on scores as well as
  // requests and can finish noticeably earlier than the failure-free
  // baseline, so late fractions of the baseline wall can miss the run).
  ASSERT_FALSE(baseline.batch_complete_seconds.empty());
  config.fault.kills.push_back(fault::WorkerKill{
      1, fraction_of_wall(baseline.batch_complete_seconds.back(), 0.7)});
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.overlap_count, 0u);
  EXPECT_EQ(stats.faults.workers_died, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, WorkerDeathTest,
                         ::testing::ValuesIn(kRecoveryStrategies),
                         [](const auto& param_info) {
                           std::string name = strategy_name(param_info.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(static_cast<unsigned char>(c));
                           });
                           return name;
                         });

// ---------------------------------------------------------------------------
// Deterministic replay: same seed + same plan ⇒ identical run.
// ---------------------------------------------------------------------------

TEST(FaultDeterminismTest, KillPlanReplaysIdentically) {
  auto config = fault_test_config(Strategy::WWList);
  config.fault = fault::parse_fault_plan("kill:worker=2,at=1s");
  const auto first = run_simulation(config);
  const auto second = run_simulation(config);
  EXPECT_EQ(first.to_json(), second.to_json());
}

TEST(FaultDeterminismTest, DropPlanReplaysIdentically) {
  auto config = fault_test_config(Strategy::MW);
  config.fault = fault::parse_fault_plan("drop:worker=1,prob=0.5");
  const auto first = run_simulation(config);
  const auto second = run_simulation(config);
  EXPECT_EQ(first.to_json(), second.to_json());
  EXPECT_GE(first.faults.scores_dropped, 1u);
}

// ---------------------------------------------------------------------------
// Message faults: drops force retirement; delays only add latency.
// ---------------------------------------------------------------------------

TEST(MessageFaultTest, CertainDropsRetireTheWorkerAndStillVerify) {
  auto config = fault_test_config(Strategy::WWList);
  config.fault = fault::parse_fault_plan("drop:worker=1,prob=1");
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.overlap_count, 0u);
  EXPECT_EQ(stats.faults.workers_died, 0u);  // alive, just mute
  EXPECT_EQ(stats.faults.workers_retired, 1u);
  EXPECT_GE(stats.faults.scores_dropped, 1u);
  EXPECT_GE(stats.faults.tasks_reassigned, 1u);
}

TEST(MessageFaultTest, DelayedScoresOnlyAddLatency) {
  // Baseline with a zero delay: same recovery-capable master loop (whose
  // protocol slack differs slightly from the failure-free loop), so the
  // comparison isolates the injected latency.
  auto config = fault_test_config(Strategy::WWList);
  config.fault = fault::parse_fault_plan("delay:worker=1,by=0");
  const auto baseline = run_simulation(config);
  config.fault = fault::parse_fault_plan("delay:worker=1,by=20ms");
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.faults.workers_retired, 0u);
  EXPECT_EQ(stats.faults.duplicate_completions, 0u);
  EXPECT_GE(stats.wall_seconds, baseline.wall_seconds);
}

// ---------------------------------------------------------------------------
// Stragglers: a slowed worker at the collective barrier must not be
// misdeclared dead under a generous timeout.
// ---------------------------------------------------------------------------

TEST(StragglerTest, SlowWorkerAtCollectiveBarrierIsNotRetired) {
  auto config = fault_test_config(Strategy::WWColl);
  const auto baseline = run_simulation(config);
  config.fault = fault::parse_fault_plan("slow:worker=1,factor=8");
  config.fault_detection_timeout = sim::seconds(60);
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.faults.workers_died, 0u);
  EXPECT_EQ(stats.faults.workers_retired, 0u);
  EXPECT_EQ(stats.faults.duplicate_completions, 0u);
  // The straggler slows every collective round down.
  EXPECT_GT(stats.wall_seconds, baseline.wall_seconds);
}

TEST(StragglerTest, SpeculativeRetirementOfStragglerKeepsLayoutExact) {
  // A timeout shorter than the straggler's stretched search retires it even
  // though it is alive; its late duplicate completions must be discarded,
  // keeping the layout exact.
  auto config = fault_test_config(Strategy::WWList);
  config.fault = fault::parse_fault_plan("slow:worker=1,factor=8");
  config.fault_detection_timeout = sim::milliseconds(400);
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.overlap_count, 0u);
  EXPECT_EQ(stats.faults.workers_died, 0u);
  EXPECT_GE(stats.faults.workers_retired, 1u);
  EXPECT_GE(stats.faults.duplicate_completions, 1u);
}

// ---------------------------------------------------------------------------
// PFS server faults: pure I/O degradation, no protocol perturbation.
// ---------------------------------------------------------------------------

TEST(ServerFaultTest, DegradedServerSlowsTheRunButVerifies) {
  auto config = fault_test_config(Strategy::WWList);
  const auto baseline = run_simulation(config);
  config.fault = fault::parse_fault_plan("server:id=0,factor=16,stall=50ms");
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.faults.workers_died, 0u);
  EXPECT_GT(stats.wall_seconds, baseline.wall_seconds);
}

TEST(ServerFaultTest, StallAppliesFromItsStartTime) {
  auto config = fault_test_config(Strategy::WWList);
  config.fault = fault::parse_fault_plan("server:id=1,from=0,stall=100ms");
  const auto with_stall = run_simulation(config);
  EXPECT_TRUE(with_stall.file_exact);
}

// ---------------------------------------------------------------------------
// Hybrid groups and plan validation.
// ---------------------------------------------------------------------------

TEST(FaultHybridTest, DeathInOneGroupDoesNotCorruptTheOther) {
  auto config = fault_test_config(Strategy::WWList);
  config.nprocs = 6;  // two groups: masters 0 and 3
  config.fault = fault::parse_fault_plan("kill:worker=4,at=500ms");
  const auto stats = run_hybrid_simulation(config, 2);
  EXPECT_TRUE(stats.file_exact) << stats.summary();
  EXPECT_EQ(stats.faults.workers_died, 1u);
}

TEST(FaultValidationTest, FaultAgainstMasterRankIsRejected) {
  auto config = fault_test_config(Strategy::WWList);
  config.fault = fault::parse_fault_plan("kill:worker=0,at=1s");
  EXPECT_THROW((void)run_simulation(config), std::invalid_argument);
}

TEST(FaultValidationTest, FaultAgainstUnknownRankIsRejected) {
  auto config = fault_test_config(Strategy::WWList);
  config.fault = fault::parse_fault_plan("slow:worker=99,factor=2");
  EXPECT_THROW((void)run_simulation(config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Resume-from-flush (whole-run crash).
// ---------------------------------------------------------------------------

TEST(ResumeTest, CrashMidRunResumesFromLastFlushedBatch) {
  auto config = fault_test_config(Strategy::WWList);
  const auto baseline = run_simulation(config);
  config.fault.crash_at = fraction_of_wall(baseline.wall_seconds, 0.6);
  const auto outcome = run_with_resume(config);
  EXPECT_TRUE(outcome.crashed);
  EXPECT_GT(outcome.resume_query, 0u);  // some batches were already durable
  EXPECT_LT(outcome.resume_query, config.workload.query_count);
  EXPECT_TRUE(outcome.resumed.file_exact) << outcome.resumed.summary();
  EXPECT_NEAR(outcome.total_seconds,
              outcome.crashed_seconds + outcome.resumed_seconds, 1e-9);
  // Redoing work costs more than one clean run, but resume beats restarting
  // from scratch (crash + full rerun).
  EXPECT_GT(outcome.total_seconds, baseline.wall_seconds);
  EXPECT_LT(outcome.resumed_seconds, baseline.wall_seconds);
}

TEST(ResumeTest, CrashAfterCompletionIsANoOp) {
  auto config = fault_test_config(Strategy::WWList);
  const auto baseline = run_simulation(config);
  config.fault.crash_at =
      fraction_of_wall(baseline.wall_seconds, 2.0);  // after the end
  const auto outcome = run_with_resume(config);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_DOUBLE_EQ(outcome.total_seconds, baseline.wall_seconds);
}

TEST(ResumeTest, EarlyCrashRedoesEverything) {
  auto config = fault_test_config(Strategy::WWList);
  config.fault.crash_at = sim::milliseconds(1);  // before any flush
  const auto outcome = run_with_resume(config);
  EXPECT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.resume_query, 0u);
  EXPECT_TRUE(outcome.resumed.file_exact);
}

TEST(ResumeTest, BatchCompletionTimesAreMonotone) {
  auto config = fault_test_config(Strategy::WWList);
  const auto stats = run_simulation(config);
  ASSERT_EQ(stats.batch_complete_seconds.size(),
            (config.workload.query_count + config.queries_per_flush - 1) /
                config.queries_per_flush);
  double previous = 0.0;
  for (const double at : stats.batch_complete_seconds) {
    EXPECT_GE(at, previous);
    previous = at;
  }
  EXPECT_LE(previous, stats.wall_seconds + 1e-9);
}

}  // namespace
