#include "core/strategy.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"

namespace {

using namespace s3asim::core;

TEST(StrategyTest, Names) {
  EXPECT_STREQ(strategy_name(Strategy::MW), "MW");
  EXPECT_STREQ(strategy_name(Strategy::WWPosix), "WW-POSIX");
  EXPECT_STREQ(strategy_name(Strategy::WWList), "WW-List");
  EXPECT_STREQ(strategy_name(Strategy::WWColl), "WW-Coll");
  EXPECT_STREQ(strategy_name(Strategy::WWCollList), "WW-CollList");
}

TEST(StrategyTest, WorkerWritesClassification) {
  EXPECT_FALSE(worker_writes(Strategy::MW));
  EXPECT_TRUE(worker_writes(Strategy::WWPosix));
  EXPECT_TRUE(worker_writes(Strategy::WWList));
  EXPECT_TRUE(worker_writes(Strategy::WWColl));
  EXPECT_TRUE(worker_writes(Strategy::WWCollList));
}

TEST(StrategyTest, CollectiveClassification) {
  EXPECT_FALSE(is_collective(Strategy::MW));
  EXPECT_FALSE(is_collective(Strategy::WWPosix));
  EXPECT_FALSE(is_collective(Strategy::WWList));
  EXPECT_TRUE(is_collective(Strategy::WWColl));
  EXPECT_TRUE(is_collective(Strategy::WWCollList));
}

TEST(StrategyTest, ParseRoundTrip) {
  for (const Strategy strategy :
       {Strategy::MW, Strategy::WWPosix, Strategy::WWList, Strategy::WWColl,
        Strategy::WWCollList}) {
    EXPECT_EQ(parse_strategy(strategy_name(strategy)), strategy);
  }
}

TEST(StrategyTest, ParseAliases) {
  EXPECT_EQ(parse_strategy("mw"), Strategy::MW);
  EXPECT_EQ(parse_strategy("list"), Strategy::WWList);
  EXPECT_EQ(parse_strategy("posix"), Strategy::WWPosix);
  EXPECT_EQ(parse_strategy("coll"), Strategy::WWColl);
}

TEST(StrategyTest, ParseRejectsUnknown) {
  EXPECT_THROW((void)parse_strategy("magic"), std::invalid_argument);
}

TEST(ConfigTest, PaperConfigMatchesSection33) {
  const auto config = paper_config();
  EXPECT_EQ(config.workload.query_count, 20u);
  EXPECT_EQ(config.workload.fragment_count, 128u);
  EXPECT_EQ(config.workload.result_count_min, 1000u);
  EXPECT_EQ(config.workload.result_count_max, 2000u);
  EXPECT_EQ(config.queries_per_flush, 1u);     // "written ... after each query"
  EXPECT_TRUE(config.sync_after_write);        // "MPI_File_sync always called"
  EXPECT_EQ(config.model.pfs.layout.server_count(), 16u);
  EXPECT_EQ(config.model.pfs.layout.strip_size(), 65536u);
}

TEST(ConfigTest, TestConfigIsSmall) {
  const auto config = test_config();
  EXPECT_LE(config.workload.query_count, 8u);
  EXPECT_LE(config.workload.fragment_count, 16u);
  EXPECT_GE(config.nprocs, 2u);
}

}  // namespace
