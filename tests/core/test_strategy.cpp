#include "core/strategy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

#include "core/config.hpp"
#include "core/strategies/registry.hpp"

namespace {

using namespace s3asim::core;

TEST(StrategyTest, Names) {
  EXPECT_STREQ(strategy_name(Strategy::MW), "MW");
  EXPECT_STREQ(strategy_name(Strategy::WWPosix), "WW-POSIX");
  EXPECT_STREQ(strategy_name(Strategy::WWList), "WW-List");
  EXPECT_STREQ(strategy_name(Strategy::WWColl), "WW-Coll");
  EXPECT_STREQ(strategy_name(Strategy::WWCollList), "WW-CollList");
  EXPECT_STREQ(strategy_name(Strategy::WWFilePerProcess), "WW-FilePerProc");
  EXPECT_STREQ(strategy_name(Strategy::WWAggr), "WW-Aggr");
  EXPECT_STREQ(strategy_name(Strategy::WWSieve), "WW-Sieve");
}

TEST(StrategyTest, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const Strategy strategy : kAllStrategies) {
    const std::string name = strategy_name(strategy);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(StrategyTest, WorkerWritesClassification) {
  for (const Strategy strategy : kAllStrategies)
    EXPECT_EQ(worker_writes(strategy), strategy != Strategy::MW)
        << strategy_name(strategy);
}

TEST(StrategyTest, CollectiveClassification) {
  for (const Strategy strategy : kAllStrategies)
    EXPECT_EQ(is_collective(strategy), strategy == Strategy::WWColl ||
                                           strategy == Strategy::WWCollList)
        << strategy_name(strategy);
}

// The property the CLI/config loader depend on: the canonical name of
// every enumerator parses back to that enumerator, in any case.
TEST(StrategyTest, ParseRoundTripEveryEnumerator) {
  for (const Strategy strategy : kAllStrategies) {
    const std::string name = strategy_name(strategy);
    EXPECT_EQ(parse_strategy(name), strategy) << name;

    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) {
                     return static_cast<char>(std::toupper(c));
                   });
    EXPECT_EQ(parse_strategy(upper), strategy) << upper;

    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) {
                     return static_cast<char>(std::tolower(c));
                   });
    EXPECT_EQ(parse_strategy(lower), strategy) << lower;
  }
}

TEST(StrategyTest, ParseAliases) {
  EXPECT_EQ(parse_strategy("mw"), Strategy::MW);
  EXPECT_EQ(parse_strategy("list"), Strategy::WWList);
  EXPECT_EQ(parse_strategy("posix"), Strategy::WWPosix);
  EXPECT_EQ(parse_strategy("coll"), Strategy::WWColl);
  EXPECT_EQ(parse_strategy("colllist"), Strategy::WWCollList);
  EXPECT_EQ(parse_strategy("nn"), Strategy::WWFilePerProcess);
  EXPECT_EQ(parse_strategy("file-per-process"), Strategy::WWFilePerProcess);
  EXPECT_EQ(parse_strategy("aggr"), Strategy::WWAggr);
  EXPECT_EQ(parse_strategy("aggregate"), Strategy::WWAggr);
  EXPECT_EQ(parse_strategy("AGGR"), Strategy::WWAggr);
  EXPECT_EQ(parse_strategy("sieve"), Strategy::WWSieve);
  EXPECT_EQ(parse_strategy("SIEVE"), Strategy::WWSieve);
}

TEST(StrategyTest, ParseRejectsUnknownWithCanonicalSpellings) {
  EXPECT_THROW((void)parse_strategy("magic"), std::invalid_argument);
  try {
    (void)parse_strategy("magic");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("magic"), std::string::npos);
    for (const Strategy strategy : kAllStrategies)
      EXPECT_NE(message.find(strategy_name(strategy)), std::string::npos)
          << "error message should list " << strategy_name(strategy);
  }
}

// The registry is the pluggability seam: every enumerator must resolve to
// an IoStrategy whose id and coarse traits agree with the header's
// classification helpers.
TEST(StrategyRegistryTest, EveryEnumeratorResolvesConsistently) {
  for (const Strategy strategy : kAllStrategies) {
    const auto made = make_strategy(strategy);
    ASSERT_NE(made, nullptr) << strategy_name(strategy);
    EXPECT_EQ(made->id(), strategy) << strategy_name(strategy);
    EXPECT_EQ(made->worker_writes(), worker_writes(strategy))
        << strategy_name(strategy);
    if (is_collective(strategy)) {
      EXPECT_TRUE(made->broadcasts_offsets()) << strategy_name(strategy);
      EXPECT_TRUE(made->flush_blocks_process()) << strategy_name(strategy);
    }
  }
}

TEST(ConfigTest, PaperConfigMatchesSection33) {
  const auto config = paper_config();
  EXPECT_EQ(config.workload.query_count, 20u);
  EXPECT_EQ(config.workload.fragment_count, 128u);
  EXPECT_EQ(config.workload.result_count_min, 1000u);
  EXPECT_EQ(config.workload.result_count_max, 2000u);
  EXPECT_EQ(config.queries_per_flush, 1u);     // "written ... after each query"
  EXPECT_TRUE(config.sync_after_write);        // "MPI_File_sync always called"
  EXPECT_EQ(config.model.pfs.layout.server_count(), 16u);
  EXPECT_EQ(config.model.pfs.layout.strip_size(), 65536u);
}

TEST(ConfigTest, TestConfigIsSmall) {
  const auto config = test_config();
  EXPECT_LE(config.workload.query_count, 8u);
  EXPECT_LE(config.workload.fragment_count, 16u);
  EXPECT_GE(config.nprocs, 2u);
}

}  // namespace
