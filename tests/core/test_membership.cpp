/// Membership tests (ISSUE 10): WorkerRegistry lifecycle properties,
/// join-mid-run determinism across executors, elastic autoscaling, the
/// elastic × fault composition, and the speed-class heterogeneity model.

#include "core/membership.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/scale_model.hpp"
#include "core/simulation.hpp"
#include "core/stats.hpp"
#include "fault/fault.hpp"
#include "util/rng.hpp"

namespace {

using namespace s3asim::core;
namespace fault = s3asim::fault;
namespace sim = s3asim::sim;
namespace util = s3asim::util;

std::vector<s3asim::mpi::Rank> workers_of(std::uint32_t nprocs) {
  std::vector<s3asim::mpi::Rank> workers;
  for (std::uint32_t rank = 1; rank < nprocs; ++rank) workers.push_back(rank);
  return workers;
}

SimConfig with_engine(SimConfig config, EngineMode mode,
                      std::uint32_t threads) {
  config.engine.mode = mode;
  config.engine.threads = threads;
  return config;
}

// ---------------------------------------------------------------------------
// Registry lifecycle properties.
// ---------------------------------------------------------------------------

TEST(WorkerRegistryTest, FixedClusterStartsFullyActive) {
  const MembershipConfig membership;
  const WorkerRegistry registry(membership, workers_of(5), 1, 0.0);
  EXPECT_EQ(registry.epoch(), 0u);
  EXPECT_EQ(registry.active_count(), 4u);
  EXPECT_EQ(registry.participant_count(), 4u);
  EXPECT_EQ(registry.peak_active(), 4u);
  for (const WorkerRecord& record : registry.records()) {
    EXPECT_EQ(record.state, WorkerLifecycle::Active);
    EXPECT_DOUBLE_EQ(record.speed_factor, 1.0);
    EXPECT_FALSE(record.initially_standby);
    EXPECT_TRUE(registry.is_dispatchable(record.rank));
  }
}

TEST(WorkerRegistryTest, EpochBumpsOnEveryAcceptedTransitionOnly) {
  MembershipConfig membership;
  membership.joins.push_back({4, sim::seconds(1), ""});
  WorkerRegistry registry(membership, workers_of(5), 1, 0.0);
  EXPECT_EQ(registry.state(4), WorkerLifecycle::Standby);
  EXPECT_FALSE(registry.is_dispatchable(4));

  std::uint64_t epoch = registry.epoch();
  // Invalid transitions are rejected and leave the epoch untouched.
  EXPECT_FALSE(registry.activate(4, sim::seconds(1)));
  EXPECT_FALSE(registry.begin_drain(4, sim::seconds(1)));
  EXPECT_FALSE(registry.complete_drain(4, sim::seconds(1)));
  EXPECT_EQ(registry.epoch(), epoch);

  // The canonical path bumps it once per accepted step, monotonically.
  EXPECT_TRUE(registry.begin_join(4, sim::seconds(1)));
  EXPECT_EQ(registry.epoch(), ++epoch);
  EXPECT_TRUE(registry.activate(4, sim::seconds(2)));
  EXPECT_EQ(registry.epoch(), ++epoch);
  EXPECT_TRUE(registry.begin_drain(4, sim::seconds(3)));
  EXPECT_EQ(registry.epoch(), ++epoch);
  EXPECT_TRUE(registry.complete_drain(4, sim::seconds(4)));
  EXPECT_EQ(registry.epoch(), ++epoch);
  EXPECT_EQ(registry.state(4), WorkerLifecycle::Departed);
  EXPECT_EQ(registry.joins_completed(), 1u);
  EXPECT_EQ(registry.drains_completed(), 1u);
  ASSERT_EQ(registry.join_latencies().size(), 1u);
  EXPECT_DOUBLE_EQ(registry.join_latencies()[0], 1.0);
}

TEST(WorkerRegistryTest, OnlyActiveWorkersAreDispatchable) {
  MembershipConfig membership;
  membership.joins.push_back({3, sim::seconds(1), ""});
  WorkerRegistry registry(membership, workers_of(5), 1, 0.0);

  EXPECT_FALSE(registry.is_dispatchable(3));  // Standby
  EXPECT_TRUE(registry.begin_join(3, sim::seconds(1)));
  EXPECT_FALSE(registry.is_dispatchable(3));  // Joining
  EXPECT_TRUE(registry.activate(3, sim::seconds(1)));
  EXPECT_TRUE(registry.is_dispatchable(3));  // Active
  EXPECT_TRUE(registry.begin_drain(3, sim::seconds(2)));
  EXPECT_FALSE(registry.is_dispatchable(3));  // Draining
  EXPECT_TRUE(registry.complete_drain(3, sim::seconds(3)));
  EXPECT_FALSE(registry.is_dispatchable(3));  // Departed
  EXPECT_TRUE(registry.mark_dead(1, sim::seconds(3)));
  EXPECT_FALSE(registry.is_dispatchable(1));  // Dead
}

TEST(WorkerRegistryTest, DeathIsFirstWinsFromAnyLiveState) {
  const MembershipConfig membership;
  WorkerRegistry registry(membership, workers_of(5), 1, 0.0);
  EXPECT_TRUE(registry.mark_dead(2, sim::seconds(1)));
  // The detector retiring the same worker later is deduplicated.
  EXPECT_FALSE(registry.mark_dead(2, sim::seconds(5)));
  EXPECT_EQ(registry.record(2).left_at, sim::seconds(1));
  EXPECT_EQ(registry.count(WorkerLifecycle::Dead), 1u);
  EXPECT_EQ(registry.active_count(), 3u);
}

TEST(WorkerRegistryTest, StandbyPickIsLowestRankAndSkipsScheduledJoiners) {
  MembershipConfig membership;
  membership.elastic = true;
  membership.min_workers = 1;
  membership.joins.push_back({2, sim::seconds(9), ""});
  WorkerRegistry registry(membership, workers_of(6), 1, 0.0);
  // Workers 2..5 start Standby (min_workers = 1 keeps only worker 1
  // active); worker 2 is reserved for its scheduled join, so the elastic
  // pool starts at worker 3.
  ASSERT_TRUE(registry.pick_standby().has_value());
  EXPECT_EQ(*registry.pick_standby(), 3u);
  EXPECT_TRUE(registry.begin_join(3, sim::seconds(1)));
  EXPECT_EQ(*registry.pick_standby(), 4u);
}

TEST(WorkerRegistryTest, DrainCandidateIsMostRecentlyActivated) {
  MembershipConfig membership;
  membership.elastic = true;
  membership.min_workers = 1;
  WorkerRegistry registry(membership, workers_of(5), 1, 0.0);
  EXPECT_TRUE(registry.begin_join(2, sim::seconds(1)));
  EXPECT_TRUE(registry.activate(2, sim::seconds(1)));
  EXPECT_TRUE(registry.begin_join(3, sim::seconds(2)));
  EXPECT_TRUE(registry.activate(3, sim::seconds(2)));
  // LIFO scale-down: the newest member goes first; the founding member
  // (join_completed = 0) goes last.
  ASSERT_TRUE(registry.pick_drain_candidate().has_value());
  EXPECT_EQ(*registry.pick_drain_candidate(), 3u);
  EXPECT_TRUE(registry.begin_drain(3, sim::seconds(3)));
  EXPECT_EQ(*registry.pick_drain_candidate(), 2u);
  EXPECT_TRUE(registry.begin_drain(2, sim::seconds(3)));
  EXPECT_EQ(*registry.pick_drain_candidate(), 1u);
}

TEST(WorkerRegistryTest, WorkerSecondsSumParticipantSpans) {
  MembershipConfig membership;
  membership.joins.push_back({4, sim::seconds(2), ""});
  WorkerRegistry registry(membership, workers_of(5), 1, 0.0);
  EXPECT_TRUE(registry.begin_join(4, sim::seconds(2)));
  EXPECT_TRUE(registry.activate(4, sim::seconds(3)));
  EXPECT_TRUE(registry.mark_dead(1, sim::seconds(5)));
  // Workers 2 and 3: 0..10; worker 1: 0..5; worker 4: 3..10.
  EXPECT_DOUBLE_EQ(registry.worker_seconds(sim::seconds(10)), 32.0);
}

TEST(WorkerRegistryTest, ClassPatternAssignsRoundRobinWithCounts) {
  MembershipConfig membership;
  membership.classes.push_back({"standard", 1.0, 3});
  membership.classes.push_back({"accel", 4.0, 1});
  const WorkerRegistry registry(membership, workers_of(9), 1, 0.0);
  // Pattern: standard ×3, accel ×1, repeating over workers 1..8.
  const std::vector<double> expected = {1.0, 1.0, 1.0, 4.0,
                                        1.0, 1.0, 1.0, 4.0};
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_DOUBLE_EQ(registry.records()[i].speed_factor, expected[i])
        << "worker " << i + 1;
}

TEST(WorkerRegistryTest, JitterFactorReproducesLegacyFormulaExactly) {
  const std::uint64_t seed = 20060627;
  const double jitter = 0.25;
  const MembershipConfig membership;
  const WorkerRegistry registry(membership, workers_of(5), seed, jitter);
  for (std::uint32_t rank = 1; rank < 5; ++rank) {
    // The pre-registry per-rank heterogeneity formula, verbatim.
    util::Xoshiro256 rng(util::hash_combine(seed ^ 0x48e7e601ULL, rank));
    const double expected = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
    EXPECT_DOUBLE_EQ(registry.speed_factor(rank), expected) << "rank " << rank;
  }
}

// ---------------------------------------------------------------------------
// Spec parsing properties beyond the loader tests.
// ---------------------------------------------------------------------------

TEST(MembershipParseTest, ClassSpecRoundTrips) {
  const auto classes =
      parse_worker_classes(" standard : speed=1 , count=3 | accel:speed=4 ");
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].name, "standard");
  EXPECT_EQ(classes[0].count, 3u);
  EXPECT_EQ(classes[1].name, "accel");
  EXPECT_EQ(classes[1].count, 1u);  // count defaults to 1
  EXPECT_DOUBLE_EQ(classes[1].speed, 4.0);
}

TEST(MembershipParseTest, JoinSpecAcceptsClassOverride) {
  const auto joins = parse_joins("worker=4,at=2s,class=accel");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].rank, 4u);
  EXPECT_EQ(joins[0].at, sim::seconds(2));
  EXPECT_EQ(joins[0].speed_class, "accel");
}

// ---------------------------------------------------------------------------
// Join-mid-run determinism: one scheduled joiner, identical statistics on
// the serial scheduler, concurrent replicas (the --jobs path), and the
// parallel engine at 2 and 4 threads.
// ---------------------------------------------------------------------------

SimConfig join_config() {
  auto config = test_config();
  config.membership.joins = parse_joins("worker=4,at=200ms");
  return config;
}

TEST(MembershipDeterminismTest, ScheduledJoinIdenticalAcrossExecutors) {
  const auto config = join_config();
  const std::string serial = run_simulation(config).to_json();

  std::string replica;
  std::thread concurrent(
      [&replica, config] { replica = run_simulation(config).to_json(); });
  const std::string mine = run_simulation(config).to_json();
  concurrent.join();
  EXPECT_EQ(serial, mine);
  EXPECT_EQ(serial, replica);

  for (const std::uint32_t threads : {2u, 4u}) {
    const std::string parallel =
        run_simulation(with_engine(config, EngineMode::Parallel, threads))
            .to_json();
    EXPECT_EQ(serial, parallel) << "parallel engine x" << threads;
  }
}

TEST(MembershipTest, ScheduledJoinerParticipatesAndVerifies) {
  const auto stats = run_simulation(join_config());
  EXPECT_TRUE(stats.file_exact);
  EXPECT_TRUE(stats.membership.enabled);
  EXPECT_EQ(stats.membership.joins, 1u);
  EXPECT_EQ(stats.membership.participants, 4u);
  EXPECT_EQ(stats.membership.peak_active, 4u);
  EXPECT_EQ(stats.membership.epoch, 2u);  // begin_join + activate
  EXPECT_GT(stats.membership.join_latency_max_seconds, 0.0);
  EXPECT_GT(stats.ranks[4].tasks_processed, 0u);
  // The joiner was absent early, so it cannot dominate the task counts.
  EXPECT_LT(stats.ranks[4].tasks_processed, stats.ranks[1].tasks_processed);
}

TEST(MembershipTest, JoinerStagesItsFragmentUnderDatabaseIo) {
  auto config = join_config();
  config.workload.database_bytes = 4 * 1024 * 1024;
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact);
  EXPECT_EQ(stats.membership.joins, 1u);
  // The Welcome handler pre-stages fragment (rank % fragments) before the
  // first request, so the joiner streams at least one fragment.
  EXPECT_GT(stats.ranks[4].fragment_loads, 0u);
}

// ---------------------------------------------------------------------------
// Elastic serving: the autoscaler grows from min_workers and drains back;
// outstanding work always completes (drain-on-request), and the run stays
// deterministic across executors.
// ---------------------------------------------------------------------------

SimConfig elastic_config() {
  auto config = test_config();
  config.workload.query_count = 12;
  config.serving.arrival_rate_hz = 40.0;
  config.membership.elastic = true;
  config.membership.min_workers = 1;
  config.membership.autoscale_target = 2.0;
  config.membership.autoscale_cooldown = sim::milliseconds(20);
  return config;
}

TEST(ElasticTest, AutoscalerGrowsAndDrainsDeterministically) {
  const auto config = elastic_config();
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact);
  EXPECT_TRUE(stats.serving.enabled);
  EXPECT_EQ(stats.serving.overall.completed, 12u);
  EXPECT_TRUE(stats.membership.enabled);
  EXPECT_GT(stats.membership.joins, 0u);
  EXPECT_GT(stats.membership.drains, 0u);
  EXPECT_GT(stats.membership.peak_active, 1u);
  // Cooldown-paced drains head back toward the floor; the teardown
  // Finish releases whatever the cooldown hadn't drained yet.
  EXPECT_LT(stats.membership.final_active, stats.membership.peak_active);
  EXPECT_GT(stats.membership.worker_seconds, 0.0);
  // Provisioning cost stays below the static-peak envelope.
  EXPECT_LT(stats.membership.worker_seconds,
            stats.wall_seconds * stats.membership.peak_active);

  const std::string serial = stats.to_json();
  for (const std::uint32_t threads : {2u, 4u}) {
    const std::string parallel =
        run_simulation(with_engine(config, EngineMode::Parallel, threads))
            .to_json();
    EXPECT_EQ(serial, parallel) << "parallel engine x" << threads;
  }
}

TEST(ElasticTest, GoldenElasticRow) {
  // Pinned end-to-end elastic run (the membership analog of
  // test_golden_stats.cpp): any change to the autoscaler, the join
  // handshake, or the drain path must be a conscious diff here.
  const auto stats = run_simulation(elastic_config());
  EXPECT_TRUE(stats.file_exact);
  EXPECT_NEAR(stats.wall_seconds, 2.999240647, 1e-9);
  EXPECT_EQ(stats.events, 6777u);
  EXPECT_EQ(stats.membership.epoch, 8u);
  EXPECT_EQ(stats.membership.joins, 3u);
  EXPECT_EQ(stats.membership.drains, 1u);
  EXPECT_NEAR(stats.membership.worker_seconds, 11.616695029, 1e-9);
}

TEST(ElasticTest, NeverSummonedStandbysAreReleasedCleanly) {
  auto config = elastic_config();
  // A tiny offered load keeps the queue below target: nobody joins.
  config.workload.query_count = 2;
  config.serving.arrival_rate_hz = 0.5;
  config.membership.autoscale_target = 64.0;
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact);
  EXPECT_EQ(stats.membership.joins, 0u);
  EXPECT_EQ(stats.membership.participants, 1u);
  EXPECT_EQ(stats.serving.overall.completed, 2u);
}

// ---------------------------------------------------------------------------
// Membership × fault composition (closed batch): a scheduled joiner that
// is later killed exercises join-then-die; the work is reassigned and the
// output still verifies.
// ---------------------------------------------------------------------------

TEST(MembershipFaultTest, JoinerKilledAfterJoiningIsReassigned) {
  auto config = test_config();
  config.workload.query_count = 8;
  config.membership.joins = parse_joins("worker=4,at=100ms");
  config.fault = fault::parse_fault_plan("kill:worker=4,at=600ms");
  config.fault_detection_timeout = sim::seconds(1);
  const auto stats = run_simulation(config);
  EXPECT_TRUE(stats.file_exact);
  EXPECT_EQ(stats.membership.joins, 1u);
  EXPECT_EQ(stats.membership.deaths, 1u);
  EXPECT_EQ(stats.membership.epoch, 3u);  // join + activate + death
  EXPECT_EQ(stats.faults.workers_died, 1u);
  EXPECT_GE(stats.faults.tasks_reassigned, 0u);
}

TEST(MembershipFaultTest, KillBeforeScheduledJoinRejected) {
  auto config = test_config();
  config.membership.joins = parse_joins("worker=4,at=1s");
  config.fault = fault::parse_fault_plan("kill:worker=4,at=500ms");
  EXPECT_THROW((void)run_simulation(config), std::exception);
}

// ---------------------------------------------------------------------------
// Heterogeneous speed classes end-to-end.
// ---------------------------------------------------------------------------

SimConfig heterogeneous_config() {
  auto config = test_config();
  config.membership.classes =
      parse_worker_classes("standard:speed=1,count=3|accel:speed=4,count=1");
  return config;
}

TEST(SpeedClassTest, FasterClassProcessesMoreTasks) {
  const auto stats = run_simulation(heterogeneous_config());
  EXPECT_TRUE(stats.file_exact);
  EXPECT_TRUE(stats.membership.enabled);
  ASSERT_EQ(stats.membership.classes.size(), 2u);
  EXPECT_EQ(stats.membership.classes[0].workers, 3u);
  EXPECT_EQ(stats.membership.classes[1].workers, 1u);
  EXPECT_DOUBLE_EQ(stats.membership.speed_max, 4.0);
  // Worker 4 is the accelerator: 4× the search speed must show up as a
  // task-count lead over every standard-class worker.
  for (std::uint32_t rank = 1; rank <= 3; ++rank)
    EXPECT_GT(stats.ranks[4].tasks_processed, stats.ranks[rank].tasks_processed)
        << "rank " << rank;
}

TEST(SpeedClassTest, SpeedAwareDispatchBeatsBlindOnMakespan) {
  auto aware = heterogeneous_config();
  auto blind = heterogeneous_config();
  blind.membership.speed_aware = false;
  const auto aware_stats = run_simulation(aware);
  const auto blind_stats = run_simulation(blind);
  EXPECT_TRUE(aware_stats.file_exact);
  EXPECT_TRUE(blind_stats.file_exact);
  // Speed-aware sizing (big fragments to fast workers) must not lose to
  // blind FCFS on the same cluster.
  EXPECT_LE(aware_stats.wall_seconds, blind_stats.wall_seconds * 1.005);
}

TEST(SpeedClassTest, HeterogeneousRunIdenticalAcrossExecutors) {
  const auto config = heterogeneous_config();
  const std::string serial = run_simulation(config).to_json();
  for (const std::uint32_t threads : {2u, 4u}) {
    const std::string parallel =
        run_simulation(with_engine(config, EngineMode::Parallel, threads))
            .to_json();
    EXPECT_EQ(serial, parallel) << "parallel engine x" << threads;
  }
}

TEST(SpeedClassTest, HomogeneousRunEmitsNoMembershipBlock) {
  const auto stats = run_simulation(test_config());
  EXPECT_FALSE(stats.membership.enabled);
  EXPECT_EQ(stats.to_json().find("\"membership\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scale model: potential workers exist as LPs regardless of join time, and
// class speeds / joins keep the cross-thread bit-identity contract.
// ---------------------------------------------------------------------------

ScaleConfig scale_config() {
  ScaleConfig config;
  config.nprocs = 33;
  config.servers = 4;
  config.queries = 2;
  config.score_rounds_per_slice = 50;
  return config;
}

TEST(ScaleMembershipTest, ClassSpeedsAndJoinsBitIdenticalAcrossThreads) {
  auto config = scale_config();
  config.class_speeds = {1.0, 1.0, 4.0};
  config.join_times.assign(config.workers(), 0);
  config.join_times[4] = sim::milliseconds(30);
  config.join_times[9] = sim::milliseconds(60);
  const ScaleStats serial = run_scale_model(config, 1);
  for (const unsigned threads : {2u, 4u}) {
    const ScaleStats parallel = run_scale_model(config, threads);
    EXPECT_EQ(serial.to_json(), parallel.to_json()) << "threads " << threads;
  }
  EXPECT_GT(serial.fingerprint, 0u);
}

TEST(ScaleMembershipTest, JoinDelayLengthensMakespan) {
  auto config = scale_config();
  const ScaleStats base = run_scale_model(config, 1);
  config.join_times.assign(config.workers(), 0);
  config.join_times[0] = sim::milliseconds(200);
  const ScaleStats delayed = run_scale_model(config, 1);
  EXPECT_GT(delayed.makespan_seconds, base.makespan_seconds);
  EXPECT_EQ(delayed.total_result_bytes, base.total_result_bytes);
}

TEST(ScaleMembershipTest, HomogeneousClassListIsIdentity) {
  auto config = scale_config();
  const ScaleStats base = run_scale_model(config, 1);
  config.class_speeds = {1.0, 1.0};  // speed 1.0 divides are skipped
  const ScaleStats classed = run_scale_model(config, 1);
  EXPECT_EQ(base.to_json(), classed.to_json());
}

TEST(ScaleMembershipTest, NonPositiveClassSpeedRejected) {
  auto config = scale_config();
  config.class_speeds = {1.0, 0.0};
  EXPECT_THROW((void)run_scale_model(config, 1), std::exception);
}

}  // namespace
