#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "util/units.hpp"

/// Tests for the database-streaming extension (§1's query-segmentation
/// motivation; mpiBLAST fragment-affinity scheduling; super-linear-speedup
/// mechanics) and the MW nonblocking-I/O ablation (§2.1).

namespace {

using namespace s3asim::core;
using s3asim::util::MiB;

SimConfig db_config(std::uint64_t db_bytes, std::uint64_t memory,
                    bool affinity = true) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  config.workload.database_bytes = db_bytes;
  config.worker_memory_bytes = memory;
  config.fragment_affinity = affinity;
  return config;
}

TEST(DatabaseIoTest, DisabledByDefault) {
  const auto stats = run_simulation(test_config());
  EXPECT_EQ(stats.db_bytes_read, 0u);
  for (const auto& rank : stats.ranks) {
    EXPECT_EQ(rank.fragment_loads, 0u);
    EXPECT_EQ(rank.fragment_hits, 0u);
  }
}

TEST(DatabaseIoTest, ColdFragmentsAreStreamed) {
  // Plenty of memory: each fragment is read at most once per worker.
  const auto stats = run_simulation(db_config(64 * MiB, 1024 * MiB));
  EXPECT_GT(stats.db_bytes_read, 0u);
  std::uint64_t loads = 0, hits = 0;
  for (const auto& rank : stats.ranks) {
    loads += rank.fragment_loads;
    hits += rank.fragment_hits;
  }
  EXPECT_GT(loads, 0u);
  // 8 fragments, 4 workers, 4 queries: with caching, far fewer loads than
  // tasks.
  EXPECT_LT(loads, 32u);
  EXPECT_EQ(loads + hits, 32u);  // every task either hits or loads
  EXPECT_TRUE(stats.file_exact);
}

TEST(DatabaseIoTest, BytesReadMatchesLoadCount) {
  const auto config = db_config(64 * MiB, 1024 * MiB);
  const auto stats = run_simulation(config);
  std::uint64_t loads = 0;
  for (const auto& rank : stats.ranks) loads += rank.fragment_loads;
  const std::uint64_t fragment_bytes =
      config.workload.database_bytes / config.workload.fragment_count;
  EXPECT_EQ(stats.db_bytes_read, loads * fragment_bytes);
}

TEST(DatabaseIoTest, TinyMemoryThrashes) {
  // Memory below one fragment: every task must stream its fragment.
  const auto stats = run_simulation(db_config(64 * MiB, 4 * MiB));
  std::uint64_t loads = 0, hits = 0;
  for (const auto& rank : stats.ranks) {
    loads += rank.fragment_loads;
    hits += rank.fragment_hits;
  }
  EXPECT_EQ(hits, 0u);
  EXPECT_EQ(loads, 32u);  // 4 queries x 8 fragments
}

TEST(DatabaseIoTest, MoreMemoryNeverSlower) {
  const auto tight = run_simulation(db_config(256 * MiB, 16 * MiB));
  const auto roomy = run_simulation(db_config(256 * MiB, 512 * MiB));
  EXPECT_LE(roomy.wall_seconds, tight.wall_seconds * 1.01);
  EXPECT_LT(roomy.db_bytes_read, tight.db_bytes_read);
}

TEST(DatabaseIoTest, AffinityReducesFragmentLoads) {
  const auto with = run_simulation(db_config(256 * MiB, 64 * MiB, true));
  const auto without = run_simulation(db_config(256 * MiB, 64 * MiB, false));
  std::uint64_t loads_with = 0, loads_without = 0;
  for (const auto& rank : with.ranks) loads_with += rank.fragment_loads;
  for (const auto& rank : without.ranks) loads_without += rank.fragment_loads;
  EXPECT_LE(loads_with, loads_without);
  EXPECT_TRUE(with.file_exact);
  EXPECT_TRUE(without.file_exact);
}

TEST(DatabaseIoTest, AggregateMemoryEffect) {
  // §1: "Super-linear speedup is possible when the sequence database is
  // larger than the processor memory by fitting the large database into
  // the aggregate memory of all processors."  With affinity, more workers
  // ⇒ each worker's working set of fragments shrinks into its memory ⇒
  // per-task fragment loads drop.
  auto few = db_config(512 * MiB, 64 * MiB);
  few.nprocs = 3;
  auto many = db_config(512 * MiB, 64 * MiB);
  many.nprocs = 9;
  const auto few_stats = run_simulation(few);
  const auto many_stats = run_simulation(many);
  std::uint64_t few_loads = 0, many_loads = 0;
  for (const auto& rank : few_stats.ranks) few_loads += rank.fragment_loads;
  for (const auto& rank : many_stats.ranks) many_loads += rank.fragment_loads;
  EXPECT_LT(many_loads, few_loads);
}

TEST(DatabaseIoTest, VerificationHoldsForAllStrategiesWithDbIo) {
  for (const Strategy strategy :
       {Strategy::MW, Strategy::WWPosix, Strategy::WWList, Strategy::WWColl}) {
    auto config = db_config(128 * MiB, 32 * MiB);
    config.strategy = strategy;
    const auto stats = run_simulation(config);
    EXPECT_TRUE(stats.file_exact) << strategy_name(strategy);
  }
}

TEST(MwNonblockingTest, NonblockingIsAtLeastAsFast) {
  auto config = test_config();
  config.strategy = Strategy::MW;
  const auto blocking = run_simulation(config);
  config.mw_nonblocking_io = true;
  const auto nonblocking = run_simulation(config);
  EXPECT_TRUE(nonblocking.file_exact);
  EXPECT_LE(nonblocking.wall_seconds, blocking.wall_seconds * 1.001);
  EXPECT_EQ(nonblocking.output_bytes, blocking.output_bytes);
}

TEST(MwNonblockingTest, PhaseAccountingStillSumsToWall) {
  auto config = test_config();
  config.strategy = Strategy::MW;
  config.mw_nonblocking_io = true;
  const auto stats = run_simulation(config);
  for (const auto& rank : stats.ranks)
    EXPECT_EQ(rank.phases.total(), rank.wall);
}

TEST(MwNonblockingTest, OnlyAffectsMw) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  const auto base = run_simulation(config);
  config.mw_nonblocking_io = true;
  const auto toggled = run_simulation(config);
  EXPECT_DOUBLE_EQ(base.wall_seconds, toggled.wall_seconds);
}

}  // namespace
