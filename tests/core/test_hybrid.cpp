#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "util/units.hpp"

/// Tests for hybrid query/database segmentation (§5 future work): multiple
/// master/worker groups sharing the cluster and file system, each owning a
/// round-robin slice of the queries and its own output file.

namespace {

using namespace s3asim::core;
using s3asim::util::MiB;

SimConfig hybrid_config() {
  auto config = test_config();      // 4 queries, 8 fragments
  config.nprocs = 8;                // divisible by 1, 2, 4
  config.strategy = Strategy::WWList;
  return config;
}

TEST(HybridTest, OneGroupMatchesPlainSimulation) {
  const auto config = hybrid_config();
  const auto plain = run_simulation(config);
  const auto hybrid = run_hybrid_simulation(config, 1);
  EXPECT_DOUBLE_EQ(plain.wall_seconds, hybrid.wall_seconds);
  EXPECT_EQ(plain.output_bytes, hybrid.output_bytes);
  EXPECT_EQ(hybrid.groups, 1u);
}

class HybridGroupTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HybridGroupTest, AllGroupsVerifyExactly) {
  const auto stats = run_hybrid_simulation(hybrid_config(), GetParam());
  EXPECT_TRUE(stats.file_exact);
  EXPECT_EQ(stats.overlap_count, 0u);
  EXPECT_EQ(stats.bytes_covered, stats.output_bytes);
  EXPECT_EQ(stats.groups, GetParam());
}

TEST_P(HybridGroupTest, AllTasksProcessedOnce) {
  const auto config = hybrid_config();
  const auto stats = run_hybrid_simulation(config, GetParam());
  std::uint64_t tasks = 0;
  for (const auto& rank : stats.ranks) tasks += rank.tasks_processed;
  EXPECT_EQ(tasks, static_cast<std::uint64_t>(config.workload.query_count) *
                       config.workload.fragment_count);
}

TEST_P(HybridGroupTest, MastersNeverCompute) {
  const auto config = hybrid_config();
  const auto stats = run_hybrid_simulation(config, GetParam());
  const std::uint32_t per_group = config.nprocs / GetParam();
  for (std::uint32_t g = 0; g < GetParam(); ++g)
    EXPECT_EQ(stats.ranks[g * per_group].tasks_processed, 0u);
}

TEST_P(HybridGroupTest, PhaseSumsHold) {
  const auto stats = run_hybrid_simulation(hybrid_config(), GetParam());
  for (const auto& rank : stats.ranks)
    EXPECT_EQ(rank.phases.total(), rank.wall);
}

INSTANTIATE_TEST_SUITE_P(Groups, HybridGroupTest, ::testing::Values(1u, 2u, 4u));

TEST(HybridTest, WorksForEveryStrategy) {
  for (const Strategy strategy :
       {Strategy::MW, Strategy::WWPosix, Strategy::WWList, Strategy::WWColl,
        Strategy::WWCollList}) {
    auto config = hybrid_config();
    config.strategy = strategy;
    const auto stats = run_hybrid_simulation(config, 2);
    EXPECT_TRUE(stats.file_exact) << strategy_name(strategy);
  }
}

TEST(HybridTest, QuerySyncMode) {
  auto config = hybrid_config();
  config.query_sync = true;
  const auto stats = run_hybrid_simulation(config, 2);
  EXPECT_TRUE(stats.file_exact);
}

TEST(HybridTest, RejectsBadGroupCounts) {
  const auto config = hybrid_config();  // nprocs = 8
  EXPECT_THROW((void)run_hybrid_simulation(config, 0), std::invalid_argument);
  EXPECT_THROW((void)run_hybrid_simulation(config, 3), std::invalid_argument);
  EXPECT_THROW((void)run_hybrid_simulation(config, 8), std::invalid_argument);
  auto few_queries = config;
  few_queries.workload.query_count = 1;
  EXPECT_THROW((void)run_hybrid_simulation(few_queries, 2),
               std::invalid_argument);
}

TEST(HybridTest, DeterministicAcrossRuns) {
  const auto a = run_hybrid_simulation(hybrid_config(), 2);
  const auto b = run_hybrid_simulation(hybrid_config(), 2);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
}

TEST(HybridTest, MemoryPressureFavorsFewGroups) {
  // Hybrid trade-off: with G groups each worker must cover F·G/(nprocs-G)
  // fragments per query, so more groups raise per-worker memory pressure.
  auto config = hybrid_config();
  config.nprocs = 8;
  config.workload.database_bytes = 64 * MiB;
  config.worker_memory_bytes = 16 * MiB;
  const auto one = run_hybrid_simulation(config, 1);
  const auto four = run_hybrid_simulation(config, 4);
  std::uint64_t loads_one = 0, loads_four = 0;
  for (const auto& rank : one.ranks) loads_one += rank.fragment_loads;
  for (const auto& rank : four.ranks) loads_four += rank.fragment_loads;
  EXPECT_LE(loads_one, loads_four);
}

TEST(HybridTest, GroupsRelieveMasterBottleneckForMw) {
  // The MW master is the serial bottleneck; hybrid segmentation divides the
  // gathering/writing across G masters.
  auto config = hybrid_config();
  config.nprocs = 8;
  config.strategy = Strategy::MW;
  config.workload.query_count = 8;  // divisible work per group
  const auto one = run_hybrid_simulation(config, 1);
  const auto two = run_hybrid_simulation(config, 2);
  EXPECT_LT(two.wall_seconds, one.wall_seconds * 1.05);
}

}  // namespace
