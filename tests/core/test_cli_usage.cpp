/// Golden test for the s3asim CLI --help text (apps/cli_usage.hpp): every
/// flag the parser accepts must be documented, no stale flags may linger,
/// and the exact text is pinned so any wording change is a conscious diff
/// here too (README.md quotes parts of it).

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "cli_usage.hpp"

namespace {

const char* const kExpectedFlags[] = {
    "--procs",         "--strategy",       "--sync",
    "--speed",         "--arrival-rate",   "--arrival-trace",
    "--admit-policy",  "--admit-depth",    "--engine",
    "--engine-threads", "--cache-size",    "--cache-block",
    "--token-granularity",
    "--worker-classes", "--joins",         "--elastic",
    "--min-workers",   "--autoscale-target",
    "--read-method",   "--sieve-buffer",
    "--trace",         "--trace-json",
    "--metrics-json",  "--gantt",          "--groups",
    "--jobs",          "--fault",          "--fault-timeout",
    "--json",          "--set",            "--print-config",
    "--help",
};

/// Flags documented in the usage text: the first "--token" on each
/// flag-description line.
std::set<std::string> documented_flags() {
  std::set<std::string> flags;
  std::istringstream lines{std::string(s3asim::cli::kUsageText)};
  std::string line;
  while (std::getline(lines, line)) {
    const auto dash = line.find("--");
    if (dash == std::string::npos || dash != 2) continue;  // continuation
    const auto end = line.find_first_of(" \t", dash);
    flags.insert(line.substr(dash, end - dash));
  }
  return flags;
}

TEST(CliUsageTest, EveryParserFlagIsDocumented) {
  const std::set<std::string> documented = documented_flags();
  for (const char* flag : kExpectedFlags)
    EXPECT_TRUE(documented.count(flag) == 1) << "undocumented flag " << flag;
}

TEST(CliUsageTest, NoStaleFlagsDocumented) {
  const std::set<std::string> expected(std::begin(kExpectedFlags),
                                       std::end(kExpectedFlags));
  for (const std::string& flag : documented_flags())
    EXPECT_TRUE(expected.count(flag) == 1) << "stale flag " << flag;
}

TEST(CliUsageTest, GoldenText) {
  // Pin the full text: update both this test and README.md when editing
  // apps/cli_usage.hpp.
  const std::string text = s3asim::cli::kUsageText;
  EXPECT_EQ(text.substr(0, text.find('\n')),
            "usage: s3asim [options] [config-file]");
  EXPECT_NE(text.find("--trace-json FILE   export Chrome-trace-event JSON"),
            std::string::npos);
  EXPECT_NE(text.find("--metrics-json FILE export the per-run metrics manifest"),
            std::string::npos);
  EXPECT_NE(text.find("determinism self-check; default 1 = off"),
            std::string::npos);
  EXPECT_NE(text.find("WW-FilePerProc | WW-Aggr | WW-Sieve"),
            std::string::npos);
  EXPECT_NE(text.find("posix | list |"), std::string::npos);
  EXPECT_NE(text.find("ROMIO ind_rd_buffer_size"), std::string::npos);
  EXPECT_NE(text.find("docs/OBSERVABILITY.md"), std::string::npos);
  EXPECT_NE(text.find("crash => resume-from-flush"), std::string::npos);
  EXPECT_NE(text.find("default 0 = closed batch"), std::string::npos);
  EXPECT_NE(text.find("fifo | wfq | priority"), std::string::npos);
  EXPECT_NE(text.find("serial | parallel"), std::string::npos);
  EXPECT_NE(text.find("--cache-size B      per-client write-back cache"),
            std::string::npos);
  EXPECT_NE(text.find("byte-range lease granularity"), std::string::npos);
  EXPECT_NE(text.find("\"name:speed=S,count=N\" assigned round-robin"),
            std::string::npos);
  EXPECT_NE(text.find("\"worker=R,at=T[,class=NAME]\" (closed batch only)"),
            std::string::npos);
  EXPECT_NE(text.find("autoscaler grow/shrink the cluster"), std::string::npos);
  EXPECT_NE(text.find("admission-queue depth that triggers a scale-up"),
            std::string::npos);
  EXPECT_NE(text.find("bit-identical"), std::string::npos);
  // The text ends without a trailing newline (puts adds one).
  EXPECT_NE(text.back(), '\n');
}

}  // namespace
