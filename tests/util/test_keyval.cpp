#include "util/keyval.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace {

using s3asim::util::KeyValConfig;

TEST(KeyValTest, ParsesBasicPairs) {
  const auto config = KeyValConfig::parse("a = 1\nb = hello world\n");
  EXPECT_EQ(config.get_int("a", 0), 1);
  EXPECT_EQ(config.get_string("b", ""), "hello world");
}

TEST(KeyValTest, FallbacksForMissingKeys) {
  const auto config = KeyValConfig::parse("");
  EXPECT_EQ(config.get_int("x", 42), 42);
  EXPECT_EQ(config.get_string("y", "dflt"), "dflt");
  EXPECT_TRUE(config.get_bool("z", true));
  EXPECT_DOUBLE_EQ(config.get_double("w", 2.5), 2.5);
}

TEST(KeyValTest, CommentsAndBlankLines) {
  const auto config = KeyValConfig::parse(
      "# full comment\n\n  a = 1   # trailing\n b = 2 ; alt comment\n");
  EXPECT_EQ(config.get_int("a", 0), 1);
  EXPECT_EQ(config.get_int("b", 0), 2);
  EXPECT_EQ(config.size(), 2u);
}

TEST(KeyValTest, BoolVariants) {
  const auto config = KeyValConfig::parse(
      "t1 = true\nt2 = YES\nt3 = on\nt4 = 1\nf1 = false\nf2 = Off\n");
  for (const char* key : {"t1", "t2", "t3", "t4"})
    EXPECT_TRUE(config.get_bool(key, false)) << key;
  EXPECT_FALSE(config.get_bool("f1", true));
  EXPECT_FALSE(config.get_bool("f2", true));
}

TEST(KeyValTest, BytesWithUnits) {
  const auto config = KeyValConfig::parse("strip = 64KiB\nbig = 1.5 MiB\n");
  EXPECT_EQ(config.get_bytes("strip", 0), 65536u);
  EXPECT_EQ(config.get_bytes("big", 0), 1572864u);
}

TEST(KeyValTest, MalformedValuesThrow) {
  const auto config = KeyValConfig::parse("i = 3x\nd = nope\nb = maybe\n");
  EXPECT_THROW((void)config.get_int("i", 0), std::invalid_argument);
  EXPECT_THROW((void)config.get_double("d", 0), std::invalid_argument);
  EXPECT_THROW((void)config.get_bool("b", false), std::invalid_argument);
}

TEST(KeyValTest, DuplicateKeysRejected) {
  EXPECT_THROW((void)KeyValConfig::parse("a = 1\na = 2\n"),
               std::invalid_argument);
}

TEST(KeyValTest, MissingEqualsRejectedWithLineNumber) {
  try {
    (void)KeyValConfig::parse("good = 1\nbad line\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(KeyValTest, HistogramSection) {
  const auto config = KeyValConfig::parse(
      "x = 1\n[histogram db]\n10 100 0.5\n100 1000 0.5\n");
  const auto hist = config.get_histogram("db");
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->min_value(), 10u);
  EXPECT_EQ(hist->max_value(), 1000u);
  EXPECT_FALSE(config.get_histogram("other").has_value());
}

TEST(KeyValTest, TwoHistogramSections) {
  const auto config = KeyValConfig::parse(
      "[histogram a]\n1 2 1.0\n[histogram b]\n3 4 1.0\n");
  EXPECT_TRUE(config.get_histogram("a").has_value());
  EXPECT_TRUE(config.get_histogram("b").has_value());
}

TEST(KeyValTest, EmptyHistogramRejected) {
  EXPECT_THROW((void)KeyValConfig::parse("[histogram a]\n"),
               std::invalid_argument);
}

TEST(KeyValTest, BadHistogramRowRejected) {
  EXPECT_THROW((void)KeyValConfig::parse("[histogram a]\n1 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)KeyValConfig::parse("[histogram a]\n1 2 3 4\n"),
               std::invalid_argument);
}

TEST(KeyValTest, UnknownSectionRejected) {
  EXPECT_THROW((void)KeyValConfig::parse("[weird]\n"), std::invalid_argument);
}

TEST(KeyValTest, UnusedKeysTracksUntouched) {
  const auto config = KeyValConfig::parse("used = 1\nunused = 2\n");
  (void)config.get_int("used", 0);
  const auto unused = config.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(KeyValTest, ParseFile) {
  const std::string path = ::testing::TempDir() + "/s3asim_keyval_test.conf";
  {
    std::ofstream out(path);
    out << "answer = 42\n";
  }
  const auto config = KeyValConfig::parse_file(path);
  EXPECT_EQ(config.get_int("answer", 0), 42);
  std::remove(path.c_str());
  EXPECT_THROW((void)KeyValConfig::parse_file("/no/such/file.conf"),
               std::runtime_error);
}

}  // namespace
