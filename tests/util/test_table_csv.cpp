#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using s3asim::util::Align;
using s3asim::util::CsvWriter;
using s3asim::util::TextTable;

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable t({"Strategy", "Time (s)"});
  t.add_row({"WW-List", "40.24"});
  t.add_row({"MW", "186.71"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Strategy"), std::string::npos);
  EXPECT_NE(out.find("WW-List"), std::string::npos);
  EXPECT_NE(out.find("186.71"), std::string::npos);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW((void)t.render());
}

TEST(TextTableTest, LongRowsExtendColumns) {
  TextTable t({"a"});
  t.add_row({"1", "2", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable t({"label", "x", "y"});
  t.add_row_numeric("point", {1.23456, 2.0}, 3);
  const std::string out = t.render();
  EXPECT_NE(out.find("1.235"), std::string::npos);
  EXPECT_NE(out.find("2.000"), std::string::npos);
}

TEST(TextTableTest, ColumnsAlign) {
  TextTable t({"name", "value"}, {Align::Left, Align::Right});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "100"});
  const std::string out = t.render();
  // Right-aligned numbers: the '1' of the first row must be padded out to
  // the width of '100'.
  EXPECT_NE(out.find("   1 |"), std::string::npos);
}

class CsvFixture : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/s3asim_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
  std::string slurp() {
    std::ifstream in(path_);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvFixture, WritesRows) {
  {
    CsvWriter csv(path_);
    csv.write_row({"procs", "mw", "ww_list"});
    csv.write_row_numeric("96", {186.71, 40.24});
  }
  const std::string content = slurp();
  EXPECT_NE(content.find("procs,mw,ww_list"), std::string::npos);
  EXPECT_NE(content.find("96,186.71"), std::string::npos);
}

TEST_F(CsvFixture, EscapesSpecialCells) {
  {
    CsvWriter csv(path_);
    csv.write_row({"a,b", "say \"hi\"", "line\nbreak"});
  }
  const std::string content = slurp();
  EXPECT_NE(content.find("\"a,b\""), std::string::npos);
  EXPECT_NE(content.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST_F(CsvFixture, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/zzz/file.csv"), std::runtime_error);
}

}  // namespace
