#include "util/units.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace s3asim::util;

TEST(FormatBytesTest, Bytes) { EXPECT_EQ(format_bytes(17), "17 B"); }
TEST(FormatBytesTest, KiB) { EXPECT_EQ(format_bytes(64 * KiB), "64.00 KiB"); }
TEST(FormatBytesTest, MiB) { EXPECT_EQ(format_bytes(1536 * KiB), "1.50 MiB"); }
TEST(FormatBytesTest, GiB) { EXPECT_EQ(format_bytes(3 * GiB), "3.00 GiB"); }
TEST(FormatBytesTest, Zero) { EXPECT_EQ(format_bytes(0), "0 B"); }

TEST(ParseBytesTest, Plain) { EXPECT_EQ(parse_bytes("4096"), 4096u); }
TEST(ParseBytesTest, KiBUnit) { EXPECT_EQ(parse_bytes("64KiB"), 64 * KiB); }
TEST(ParseBytesTest, KiBWithSpace) { EXPECT_EQ(parse_bytes("64 KiB"), 64 * KiB); }
TEST(ParseBytesTest, MiBFraction) { EXPECT_EQ(parse_bytes("1.5MiB"), 1536 * KiB); }
TEST(ParseBytesTest, DecimalMB) { EXPECT_EQ(parse_bytes("208MB"), 208'000'000u); }
TEST(ParseBytesTest, CaseInsensitive) { EXPECT_EQ(parse_bytes("2gib"), 2 * GiB); }
TEST(ParseBytesTest, ShortSuffix) { EXPECT_EQ(parse_bytes("8k"), 8 * KiB); }

TEST(ParseBytesTest, RejectsGarbage) {
  EXPECT_THROW((void)parse_bytes("abc"), std::invalid_argument);
}
TEST(ParseBytesTest, RejectsUnknownUnit) {
  EXPECT_THROW((void)parse_bytes("5 parsecs"), std::invalid_argument);
}

TEST(ParseFormatRoundTrip, PowerOfTwoSizes) {
  for (const std::uint64_t size : {1ULL * KiB, 64ULL * KiB, 1ULL * MiB, 1ULL * GiB}) {
    EXPECT_EQ(parse_bytes(format_bytes(size)), size);
  }
}

TEST(FormatSecondsTest, Seconds) { EXPECT_EQ(format_seconds(12.345), "12.35 s"); }
TEST(FormatSecondsTest, Millis) { EXPECT_EQ(format_seconds(0.0056), "5.60 ms"); }
TEST(FormatSecondsTest, Micros) { EXPECT_EQ(format_seconds(780e-6), "780.00 us"); }
TEST(FormatSecondsTest, Nanos) { EXPECT_EQ(format_seconds(3e-9), "3.00 ns"); }

TEST(FormatFixedTest, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 3), "3.142");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
