#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace {

using s3asim::util::SplitMix64;
using s3asim::util::Xoshiro256;

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, UniformIsInHalfOpenUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, UniformMeanNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Xoshiro256Test, UniformU64RespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Xoshiro256Test, UniformU64SingleValueRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(77, 77), 77u);
}

TEST(Xoshiro256Test, UniformU64CoversAllValuesOfSmallRange) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256Test, UniformU64FullRangeDoesNotCrash) {
  Xoshiro256 rng(17);
  const auto v = rng.uniform_u64(0, std::numeric_limits<std::uint64_t>::max());
  (void)v;  // any value is valid
}

TEST(Xoshiro256Test, UniformRealRespectsBounds) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Xoshiro256Test, ForkProducesIndependentStreams) {
  Xoshiro256 parent(21);
  Xoshiro256 childA = parent.fork(1);
  Xoshiro256 childB = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (childA() == childB()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256Test, ForkIsDeterministicAndIndependentOfParentUse) {
  Xoshiro256 parentA(33);
  Xoshiro256 parentB(33);
  // Advancing parentB's output stream must not change fork(k): forks key off
  // state_[0] at fork time, so fork before any use.
  Xoshiro256 c1 = parentA.fork(5);
  Xoshiro256 c2 = parentB.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(HashCombineTest, OrderSensitive) {
  using s3asim::util::hash_combine;
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombineTest, Deterministic) {
  using s3asim::util::hash_combine;
  EXPECT_EQ(hash_combine(123, 456), hash_combine(123, 456));
}

class XoshiroRangeTest : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {};

TEST_P(XoshiroRangeTest, SampleMeanNearRangeMidpoint) {
  const auto [lo, hi] = GetParam();
  Xoshiro256 rng(lo * 31 + hi);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i)
    sum += static_cast<double>(rng.uniform_u64(lo, hi));
  const double expected = (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
  const double span = static_cast<double>(hi - lo);
  EXPECT_NEAR(sum / kSamples, expected, span * 0.01 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Ranges, XoshiroRangeTest,
                         ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 1},
                                           std::pair<std::uint64_t, std::uint64_t>{0, 100},
                                           std::pair<std::uint64_t, std::uint64_t>{1000, 1000000},
                                           std::pair<std::uint64_t, std::uint64_t>{6, 43131105}));

}  // namespace
