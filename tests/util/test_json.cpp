#include "util/json.hpp"

#include <gtest/gtest.h>

namespace {

using s3asim::util::JsonWriter;

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter json;
  json.begin_object();
  json.end_object();
  EXPECT_EQ(json.str(), "{}");
}

TEST(JsonWriterTest, SimpleObject) {
  JsonWriter json;
  json.begin_object();
  json.key("name");
  json.value("WW-List");
  json.key("procs");
  json.value(std::uint64_t{96});
  json.key("ok");
  json.value(true);
  json.end_object();
  EXPECT_EQ(json.str(), R"({"name":"WW-List","procs":96,"ok":true})");
}

TEST(JsonWriterTest, ArraysAndNesting) {
  JsonWriter json;
  json.begin_object();
  json.key("values");
  json.begin_array();
  json.value(std::int64_t{1});
  json.value(std::int64_t{2});
  json.begin_object();
  json.key("x");
  json.null();
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"values":[1,2,{"x":null}]})");
}

TEST(JsonWriterTest, DoublesAreLocaleIndependent) {
  JsonWriter json;
  json.begin_array();
  json.value(1.5);
  json.value(0.001);
  json.end_array();
  EXPECT_EQ(json.str(), "[1.5,0.001]");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriterTest, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string("\x01")), "\\u0001");
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value("no key"), std::logic_error);
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("key in array"), std::logic_error);
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), std::logic_error);
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW((void)json.str(), std::logic_error);  // unbalanced
  }
}

TEST(JsonWriterTest, TwoTopLevelValuesRejected) {
  JsonWriter json;
  json.value(std::int64_t{1});
  EXPECT_THROW(json.value(std::int64_t{2}), std::logic_error);
}

using s3asim::util::JsonValue;
using s3asim::util::parse_json;

TEST(JsonParserTest, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(parse_json(R"("hi")").as_string(), "hi");
}

TEST(JsonParserTest, NestedContainers) {
  const JsonValue root =
      parse_json(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.size(), 3u);
  ASSERT_TRUE(root.at("a").is_array());
  EXPECT_EQ(root.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(root.at("a").at(1).as_number(), 2.0);
  EXPECT_TRUE(root.at("a").at(2).at("b").as_bool());
  EXPECT_TRUE(root.at("c").at("d").is_null());
  EXPECT_TRUE(root.contains("e"));
  EXPECT_FALSE(root.contains("missing"));
}

TEST(JsonParserTest, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 as 😀 -> 4-byte UTF-8.
  EXPECT_EQ(parse_json(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParserTest, WriterRoundTrip) {
  JsonWriter json;
  json.begin_object();
  json.key("strategy");
  json.value("WW-Coll");
  json.key("wall");
  json.value(74.25);
  json.key("phases");
  json.begin_array();
  json.value(std::uint64_t{3});
  json.null();
  json.end_array();
  json.end_object();
  const JsonValue root = parse_json(json.str());
  EXPECT_EQ(root.at("strategy").as_string(), "WW-Coll");
  EXPECT_DOUBLE_EQ(root.at("wall").as_number(), 74.25);
  EXPECT_DOUBLE_EQ(root.at("phases").at(0).as_number(), 3.0);
  EXPECT_TRUE(root.at("phases").at(1).is_null());
}

TEST(JsonParserTest, MalformedInputThrows) {
  EXPECT_THROW((void)parse_json(""), std::runtime_error);
  EXPECT_THROW((void)parse_json("{"), std::runtime_error);
  EXPECT_THROW((void)parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW((void)parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)parse_json("01"), std::runtime_error);
  EXPECT_THROW((void)parse_json("1 2"), std::runtime_error);
  EXPECT_THROW((void)parse_json("nul"), std::runtime_error);
}

TEST(JsonParserTest, DuplicateKeysRejected) {
  EXPECT_THROW((void)parse_json(R"({"a":1,"a":2})"), std::runtime_error);
}

TEST(JsonParserTest, KindMismatchThrows) {
  const JsonValue number = parse_json("5");
  EXPECT_THROW((void)number.as_string(), std::runtime_error);
  EXPECT_THROW((void)number.items(), std::runtime_error);
  EXPECT_THROW((void)number.at("k"), std::runtime_error);
  const JsonValue object = parse_json("{}");
  EXPECT_THROW((void)object.at("missing"), std::runtime_error);
  const JsonValue array = parse_json("[1]");
  EXPECT_THROW((void)array.at(std::size_t{5}), std::runtime_error);
}

TEST(JsonParserTest, DepthLimitEnforced) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW((void)parse_json(deep), std::runtime_error);
}

}  // namespace
