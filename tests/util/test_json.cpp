#include "util/json.hpp"

#include <gtest/gtest.h>

namespace {

using s3asim::util::JsonWriter;

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter json;
  json.begin_object();
  json.end_object();
  EXPECT_EQ(json.str(), "{}");
}

TEST(JsonWriterTest, SimpleObject) {
  JsonWriter json;
  json.begin_object();
  json.key("name");
  json.value("WW-List");
  json.key("procs");
  json.value(std::uint64_t{96});
  json.key("ok");
  json.value(true);
  json.end_object();
  EXPECT_EQ(json.str(), R"({"name":"WW-List","procs":96,"ok":true})");
}

TEST(JsonWriterTest, ArraysAndNesting) {
  JsonWriter json;
  json.begin_object();
  json.key("values");
  json.begin_array();
  json.value(std::int64_t{1});
  json.value(std::int64_t{2});
  json.begin_object();
  json.key("x");
  json.null();
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"values":[1,2,{"x":null}]})");
}

TEST(JsonWriterTest, DoublesAreLocaleIndependent) {
  JsonWriter json;
  json.begin_array();
  json.value(1.5);
  json.value(0.001);
  json.end_array();
  EXPECT_EQ(json.str(), "[1.5,0.001]");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriterTest, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string("\x01")), "\\u0001");
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value("no key"), std::logic_error);
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("key in array"), std::logic_error);
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), std::logic_error);
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW((void)json.str(), std::logic_error);  // unbalanced
  }
}

TEST(JsonWriterTest, TwoTopLevelValuesRejected) {
  JsonWriter json;
  json.value(std::int64_t{1});
  EXPECT_THROW(json.value(std::int64_t{2}), std::logic_error);
}

}  // namespace
