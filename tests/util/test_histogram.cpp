#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using s3asim::util::BoxHistogram;
using s3asim::util::build_histogram;
using s3asim::util::HistogramBin;
using s3asim::util::nt_database_histogram;
using s3asim::util::nt_query_histogram;
using s3asim::util::Xoshiro256;

TEST(BoxHistogramTest, RejectsEmpty) {
  EXPECT_THROW(BoxHistogram{std::vector<HistogramBin>{}}, std::invalid_argument);
}

TEST(BoxHistogramTest, RejectsInvertedBin) {
  EXPECT_THROW((BoxHistogram{{HistogramBin{10, 5, 1.0}}}), std::invalid_argument);
}

TEST(BoxHistogramTest, RejectsNegativeWeight) {
  EXPECT_THROW((BoxHistogram{{HistogramBin{0, 5, -1.0}}}), std::invalid_argument);
}

TEST(BoxHistogramTest, RejectsZeroTotalWeight) {
  EXPECT_THROW((BoxHistogram{{HistogramBin{0, 5, 0.0}}}), std::invalid_argument);
}

TEST(BoxHistogramTest, SingleBinSamplesWithinRange) {
  const BoxHistogram hist{{HistogramBin{100, 200, 1.0}}};
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = hist.sample(rng);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 200u);
  }
}

TEST(BoxHistogramTest, MeanOfUniformBin) {
  const BoxHistogram hist{{HistogramBin{0, 100, 1.0}}};
  EXPECT_DOUBLE_EQ(hist.mean(), 50.0);
}

TEST(BoxHistogramTest, MinMaxAcrossBins) {
  const BoxHistogram hist{{HistogramBin{50, 60, 1.0}, HistogramBin{5, 10, 2.0}}};
  EXPECT_EQ(hist.min_value(), 5u);
  EXPECT_EQ(hist.max_value(), 60u);
}

TEST(BoxHistogramTest, WeightsSteerSampling) {
  // 90% of the mass in [0,0], 10% in [100,100].
  const BoxHistogram hist{{HistogramBin{0, 0, 9.0}, HistogramBin{100, 100, 1.0}}};
  Xoshiro256 rng(2);
  int high = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i)
    if (hist.sample(rng) == 100) ++high;
  EXPECT_NEAR(static_cast<double>(high) / kSamples, 0.1, 0.02);
}

TEST(BoxHistogramTest, SampledMeanMatchesAnalyticMean) {
  const BoxHistogram hist{{HistogramBin{0, 100, 1.0}, HistogramBin{1000, 2000, 1.0}}};
  Xoshiro256 rng(3);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(hist.sample(rng));
  EXPECT_NEAR(sum / kSamples, hist.mean(), hist.mean() * 0.02);
}

TEST(BoxHistogramTest, QuantileEndpoints) {
  const BoxHistogram hist{{HistogramBin{10, 20, 1.0}, HistogramBin{30, 40, 1.0}}};
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 40.0);
}

TEST(BoxHistogramTest, QuantileMedianInterpolates) {
  const BoxHistogram hist{{HistogramBin{0, 100, 1.0}}};
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 1.0);
}

TEST(BoxHistogramTest, QuantileRejectsOutOfRange) {
  const BoxHistogram hist{{HistogramBin{0, 100, 1.0}}};
  EXPECT_THROW((void)hist.quantile(1.5), std::invalid_argument);
}

TEST(BoxHistogramTest, DescribeMentionsBinCount) {
  const BoxHistogram hist{{HistogramBin{0, 10, 1.0}, HistogramBin{20, 30, 1.0}}};
  EXPECT_NE(hist.describe().find("2 bins"), std::string::npos);
}

TEST(NtHistogramTest, MatchesPaperStatedStatistics) {
  const auto& nt = nt_database_histogram();
  // Paper §3.3: min 6 B, max slightly over 43 MB, mean 4401 B.
  EXPECT_EQ(nt.min_value(), 6u);
  EXPECT_GT(nt.max_value(), 43'000'000u);
  EXPECT_LT(nt.max_value(), 44'000'000u);
  EXPECT_NEAR(nt.mean(), 4401.0, 450.0);
}

TEST(NtHistogramTest, QueryHistogramMeanMatchesTwentyQueriesAt86KiB) {
  // 20 queries ≈ 86 KiB ⇒ mean ≈ 4.3 KiB.
  const auto& q = nt_query_histogram();
  EXPECT_NEAR(q.mean(), 4400.0, 900.0);
}

TEST(NtHistogramTest, SamplingIsDeterministic) {
  Xoshiro256 a(9), b(9);
  const auto& nt = nt_database_histogram();
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(nt.sample(a), nt.sample(b));
}

TEST(BuildHistogramTest, RoundTripsRangeAndMass) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 10; v <= 1000; v += 7) values.push_back(v);
  const auto hist = build_histogram(values, 8);
  EXPECT_EQ(hist.min_value(), 10u);
  EXPECT_EQ(hist.max_value(), 997u);
  double total = 0.0;
  for (const auto& bin : hist.bins()) total += bin.weight;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(values.size()));
}

TEST(BuildHistogramTest, SingleValue) {
  const std::vector<std::uint64_t> values{42, 42, 42};
  const auto hist = build_histogram(values, 4);
  EXPECT_EQ(hist.min_value(), 42u);
  EXPECT_EQ(hist.max_value(), 42u);
  Xoshiro256 rng(1);
  EXPECT_EQ(hist.sample(rng), 42u);
}

TEST(BuildHistogramTest, RejectsEmptyInput) {
  EXPECT_THROW((void)build_histogram({}, 4), std::invalid_argument);
}

TEST(BuildHistogramTest, ApproximatesSourceMean) {
  std::vector<std::uint64_t> values;
  Xoshiro256 rng(55);
  double true_sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_u64(100, 10'000);
    values.push_back(v);
    true_sum += static_cast<double>(v);
  }
  const auto hist = build_histogram(values, 24);
  const double true_mean = true_sum / static_cast<double>(values.size());
  EXPECT_NEAR(hist.mean(), true_mean, true_mean * 0.10);
}

}  // namespace
