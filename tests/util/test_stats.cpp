#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using s3asim::util::coefficient_of_variation;
using s3asim::util::mean_of;
using s3asim::util::percentile;
using s3asim::util::RunningStats;

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStatsTest, MinMaxSum) {
  RunningStats s;
  for (const double v : {3.0, -1.0, 7.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  const std::vector<double> data{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (std::size_t i = 0; i < data.size(); ++i) {
    all.add(data[i]);
    (i < 5 ? left : right).add(data[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(PercentileTest, MedianOfOddSample) {
  const std::vector<double> v{5, 1, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> v{4, 8, 15, 16, 23, 42};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 42.0);
}

TEST(PercentileTest, RejectsEmptyAndBadP) {
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, 101), std::invalid_argument);
}

TEST(MeanOfTest, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  const std::vector<double> v{2, 4, 9};
  EXPECT_DOUBLE_EQ(mean_of(v), 5.0);
}

TEST(CoefficientOfVariationTest, ZeroForConstant) {
  const std::vector<double> v{5, 5, 5};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(v), 0.0);
}

TEST(CoefficientOfVariationTest, ScaleInvariant) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{10, 20, 30};
  EXPECT_NEAR(coefficient_of_variation(a), coefficient_of_variation(b), 1e-12);
}

}  // namespace
