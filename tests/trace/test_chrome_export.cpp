#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/schema.hpp"
#include "trace/trace.hpp"
#include "util/json.hpp"

namespace {

using s3asim::obs::Registry;
using s3asim::obs::validate_chrome_trace;
using s3asim::trace::TraceLog;
using s3asim::util::JsonValue;
using s3asim::util::parse_json;

/// A log exercising every record type the exporter handles.
TraceLog sample_log() {
  TraceLog log;
  log.record(0, "Setup", 0, 1'000'000);             // 1 ms slice, rank 0
  log.record(1, "Compute", 500'000, 2'500'000);     // 2 ms slice, rank 1
  log.event(1, "worker died", 2'500'000);           // zero-length marker
  log.span(0, 'w', 4, 65'536, 100'000, 900'000);    // PFS write span
  log.span(2, 'r', 0, 4'096, 200'000, 300'000);     // PFS read span
  log.flow(0, 1, 7, 1'024, 50'000, 150'000);        // MPI message
  return log;
}

TEST(ChromeExportTest, RoundTripParsesAndValidates) {
  const TraceLog log = sample_log();
  const JsonValue root = parse_json(log.chrome_json());
  const std::vector<std::string> errors = validate_chrome_trace(root);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(ChromeExportTest, CarriesEveryRecordType) {
  const JsonValue root = parse_json(sample_log().chrome_json());
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  std::size_t slices = 0;
  std::size_t instants = 0;
  std::size_t flow_starts = 0;
  std::size_t flow_ends = 0;
  std::size_t metadata = 0;
  for (const JsonValue& event : root.at("traceEvents").items()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "X") ++slices;
    if (ph == "i") ++instants;
    if (ph == "s") ++flow_starts;
    if (ph == "f") ++flow_ends;
    if (ph == "M") ++metadata;
  }
  EXPECT_EQ(slices, 4u);       // 2 phase intervals + 2 PFS spans
  EXPECT_EQ(instants, 1u);     // the worker-death marker
  EXPECT_EQ(flow_starts, 1u);
  EXPECT_EQ(flow_ends, 1u);
  // process_name x2 + thread_name per rank (0,1) + per server (0,2).
  EXPECT_EQ(metadata, 6u);
}

TEST(ChromeExportTest, TimesAreMicrosecondsAndPidsSeparateLayers) {
  const JsonValue root = parse_json(sample_log().chrome_json());
  bool saw_compute = false;
  bool saw_write_span = false;
  for (const JsonValue& event : root.at("traceEvents").items()) {
    if (event.at("name").as_string() == "Compute") {
      saw_compute = true;
      EXPECT_DOUBLE_EQ(event.at("pid").as_number(), 1.0);
      EXPECT_DOUBLE_EQ(event.at("tid").as_number(), 1.0);
      EXPECT_DOUBLE_EQ(event.at("ts").as_number(), 500.0);    // ns -> us
      EXPECT_DOUBLE_EQ(event.at("dur").as_number(), 2000.0);
    }
    if (event.at("ph").as_string() == "X" &&
        event.at("name").as_string() == "write") {
      saw_write_span = true;
      EXPECT_DOUBLE_EQ(event.at("pid").as_number(), 2.0);
      EXPECT_DOUBLE_EQ(event.at("tid").as_number(), 0.0);
      EXPECT_DOUBLE_EQ(event.at("args").at("pairs").as_number(), 4.0);
      EXPECT_DOUBLE_EQ(event.at("args").at("bytes").as_number(), 65536.0);
    }
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_write_span);
}

TEST(ChromeExportTest, FlowPairsShareAnId) {
  const JsonValue root = parse_json(sample_log().chrome_json());
  std::string start_id;
  std::string end_id;
  for (const JsonValue& event : root.at("traceEvents").items()) {
    if (event.at("ph").as_string() == "s")
      start_id = event.at("id").as_string();
    if (event.at("ph").as_string() == "f") {
      end_id = event.at("id").as_string();
      EXPECT_EQ(event.at("bp").as_string(), "e");
    }
  }
  EXPECT_FALSE(start_id.empty());
  EXPECT_EQ(start_id, end_id);
}

TEST(ChromeExportTest, EmptyLogStillValidates) {
  const TraceLog log;
  const JsonValue root = parse_json(log.chrome_json());
  EXPECT_TRUE(validate_chrome_trace(root).empty());
  // Only process-name metadata; no data events.
  for (const JsonValue& event : root.at("traceEvents").items())
    EXPECT_EQ(event.at("ph").as_string(), "M");
}

TEST(ChromeExportTest, DroppedRecordsAreCountedAndMirrored) {
  Registry registry;
  TraceLog log;
  log.attach_registry(&registry);
  log.record(0, "backwards", 10, 5);   // end < start -> dropped
  log.span(0, 'w', 1, 8, 10, 5);       // dropped
  log.flow(0, 1, 0, 8, 10, 5);         // dropped
  log.record(0, "ok", 0, 1);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_EQ(registry.counter("trace.intervals_dropped").value(), 3u);
  EXPECT_EQ(log.size(), 1u);
  // The surviving record still exports cleanly.
  EXPECT_TRUE(validate_chrome_trace(parse_json(log.chrome_json())).empty());
}

}  // namespace
