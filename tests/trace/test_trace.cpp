#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace {

using s3asim::sim::seconds;
using s3asim::trace::TraceLog;

TEST(TraceLogTest, RecordsIntervals) {
  TraceLog log;
  log.record(0, "Compute", 100, 200);
  log.record(1, "I/O", 150, 300);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.intervals()[0].duration(), 100);
  EXPECT_EQ(log.intervals()[1].category, "I/O");
}

TEST(TraceLogTest, DropsNegativeDurations) {
  TraceLog log;
  log.record(0, "Bad", 200, 100);
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLogTest, TotalsPerRank) {
  TraceLog log;
  log.record(0, "Compute", 0, 100);
  log.record(0, "Compute", 200, 350);
  log.record(0, "I/O", 100, 200);
  log.record(1, "Compute", 0, 999);
  const auto totals = log.totals_for_rank(0);
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].first, "Compute");
  EXPECT_EQ(totals[0].second, 250);
  EXPECT_EQ(totals[1].second, 100);
}

TEST(TraceLogTest, GanttRendersLegendAndRows) {
  TraceLog log;
  log.record(0, "Compute", 0, seconds(1.0));
  log.record(1, "I/O", seconds(0.5), seconds(2.0));
  const std::string gantt = log.render_gantt(40);
  EXPECT_NE(gantt.find("Compute"), std::string::npos);
  EXPECT_NE(gantt.find("I/O"), std::string::npos);
  EXPECT_NE(gantt.find("rank 0"), std::string::npos);
  EXPECT_NE(gantt.find("rank 1"), std::string::npos);
}

TEST(TraceLogTest, GanttEmptyTrace) {
  TraceLog log;
  EXPECT_EQ(log.render_gantt(40), "(empty trace)\n");
}

TEST(TraceLogTest, GanttRejectsTinyWidth) {
  TraceLog log;
  log.record(0, "X", 0, 10);
  EXPECT_THROW((void)log.render_gantt(2), std::invalid_argument);
}

TEST(TraceLogTest, GanttDominantCategoryWins) {
  TraceLog log;
  // Rank 0: 90% Compute, 10% I/O → most columns must show Compute's glyph.
  log.record(0, "Compute", 0, 900);
  log.record(0, "I/O", 900, 1000);
  const std::string gantt = log.render_gantt(10);
  // Glyphs derive from category initials: Compute='C', I/O='I'.
  std::istringstream lines(gantt);
  std::string line;
  std::string row;
  while (std::getline(lines, line))
    if (line.rfind("rank 0", 0) == 0) row = line;
  ASSERT_FALSE(row.empty());
  const auto c_count = std::count(row.begin(), row.end(), 'C');
  const auto i_count = std::count(row.begin(), row.end(), 'I');
  EXPECT_GT(c_count, i_count);
}

TEST(TraceLogTest, CsvExport) {
  TraceLog log;
  log.record(3, "Sync", seconds(1.0), seconds(2.5));
  const std::string path = ::testing::TempDir() + "/s3asim_trace_test.csv";
  log.export_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "rank,category,start_s,end_s");
  EXPECT_NE(row.find("3,Sync,1.0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceLogTest, ClearEmptiesLog) {
  TraceLog log;
  log.record(0, "X", 0, 10);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

}  // namespace
