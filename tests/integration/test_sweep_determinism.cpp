/// Determinism regression suite for the parallel sweep harness: a `--jobs N`
/// sweep must be byte-identical to the serial sweep (DESIGN.md §5 — the
/// paper's "results are always identical" seed-determinism invariant must
/// survive host-side parallelism).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/simulation.hpp"

namespace {

using namespace s3asim;
using namespace s3asim::bench;

std::vector<SweepPoint> quick_grid(const std::vector<std::uint32_t>& procs,
                                   const std::vector<double>& speeds) {
  std::vector<SweepPoint> grid;
  for (const bool sync : {false, true}) {
    for (const auto nprocs : procs) {
      for (const auto strategy : paper_strategies()) {
        for (const double speed : speeds) {
          grid.push_back({"", [strategy, nprocs, sync, speed] {
                            return run_point(strategy, nprocs, sync, speed);
                          }});
        }
      }
    }
  }
  return grid;
}

std::vector<std::string> run_as_json(const std::vector<std::uint32_t>& procs,
                                     const std::vector<double>& speeds,
                                     unsigned jobs) {
  const auto results = run_sweep(quick_grid(procs, speeds), jobs);
  std::vector<std::string> json;
  json.reserve(results.size());
  for (const auto& point : results) json.push_back(point.stats.to_json());
  return json;
}

TEST(SweepDeterminismTest, Fig2QuickGridParallelMatchesSerial) {
  // The fig2 quick grid (proc scaling), serial vs. 4 workers: every point's
  // full RunStats dump must match byte-for-byte, in grid order.
  const std::vector<std::uint32_t> procs{2, 8};
  const std::vector<double> speeds{1.0};
  const auto serial = run_as_json(procs, speeds, 1);
  const auto parallel = run_as_json(procs, speeds, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "grid point " << i;
}

TEST(SweepDeterminismTest, Fig5QuickGridParallelMatchesSerial) {
  // The fig5 quick grid (compute-speed scaling at a fixed proc count).
  const std::vector<std::uint32_t> procs{8};
  const std::vector<double> speeds{0.1, 25.6};
  const auto serial = run_as_json(procs, speeds, 1);
  const auto parallel = run_as_json(procs, speeds, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "grid point " << i;
}

TEST(SweepDeterminismTest, RepeatedParallelRunsAreIdentical) {
  // Two parallel executions of the same grid (different interleavings)
  // must agree with each other, not just with a serial reference.
  const std::vector<std::uint32_t> procs{2, 8};
  const std::vector<double> speeds{1.0};
  const auto first = run_as_json(procs, speeds, 4);
  const auto second = run_as_json(procs, speeds, 4);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i], second[i]) << "grid point " << i;
}

TEST(SweepDeterminismTest, ExceptionInOnePointPropagates) {
  std::vector<SweepPoint> grid;
  grid.push_back({"ok", [] {
                    return run_point(core::Strategy::WWList, 2, false);
                  }});
  grid.push_back({"boom", []() -> core::RunStats {
                    throw std::runtime_error("injected point failure");
                  }});
  EXPECT_THROW({ (void)run_sweep(std::move(grid), 2); }, std::runtime_error);
}

TEST(SweepDeterminismTest, JobsFlagParsing) {
  {
    const char* argv[] = {"bench", "--jobs", "4"};
    EXPECT_EQ(sweep_jobs(3, const_cast<char**>(argv)), 4u);
  }
  {
    const char* argv[] = {"bench", "--jobs=7"};
    EXPECT_EQ(sweep_jobs(2, const_cast<char**>(argv)), 7u);
  }
  {
    const char* argv[] = {"bench", "--quick"};
    EXPECT_EQ(sweep_jobs(2, const_cast<char**>(argv)), 1u);
  }
  {
    const char* argv[] = {"bench", "--jobs", "0"};
    EXPECT_THROW((void)sweep_jobs(3, const_cast<char**>(argv)),
                 std::runtime_error);
  }
}

}  // namespace
