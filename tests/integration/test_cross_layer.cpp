#include <gtest/gtest.h>

#include "core/simulation.hpp"

/// Cross-layer consistency: quantities reported by the application layer
/// (RunStats) must agree with what the file-system and network layers
/// actually carried.

namespace {

using namespace s3asim::core;

constexpr Strategy kAllStrategies[] = {Strategy::MW, Strategy::WWPosix,
                                       Strategy::WWList, Strategy::WWColl,
                                       Strategy::WWCollList};

class CrossLayerTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(CrossLayerTest, ServerBytesEqualOutputBytes) {
  // Without database modeling, the only data moving into the servers is the
  // result file — every strategy must push exactly output_bytes, no more
  // (no write amplification), no less (nothing skipped).
  auto config = test_config();
  config.strategy = GetParam();
  const auto stats = run_simulation(config);
  EXPECT_EQ(stats.fs.server_bytes, stats.output_bytes);
}

TEST_P(CrossLayerTest, RankBytesWrittenSumToOutput) {
  auto config = test_config();
  config.strategy = GetParam();
  const auto stats = run_simulation(config);
  std::uint64_t total = 0;
  for (const auto& rank : stats.ranks) total += rank.bytes_written;
  // Two-phase aggregators write on behalf of others, so per-rank write
  // attribution differs, but the sum is always the whole file.
  EXPECT_EQ(total, stats.output_bytes);
}

TEST_P(CrossLayerTest, SyncCountsMatchPolicy) {
  auto config = test_config();
  config.strategy = GetParam();
  config.sync_after_write = false;
  const auto stats = run_simulation(config);
  EXPECT_EQ(stats.fs.server_syncs, 0u);
}

TEST_P(CrossLayerTest, PairsAtLeastServerTouches) {
  auto config = test_config();
  config.strategy = GetParam();
  const auto stats = run_simulation(config);
  // Every write request carries at least one OL pair.
  EXPECT_GE(stats.fs.server_pairs, stats.fs.server_requests);
}

TEST_P(CrossLayerTest, WallIsMaxOfRankWalls) {
  auto config = test_config();
  config.strategy = GetParam();
  const auto stats = run_simulation(config);
  s3asim::sim::Time max_wall = 0;
  for (const auto& rank : stats.ranks)
    max_wall = std::max(max_wall, rank.wall);
  EXPECT_NEAR(stats.wall_seconds, s3asim::sim::to_seconds(max_wall), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, CrossLayerTest,
                         ::testing::ValuesIn(kAllStrategies),
                         [](const auto& param_info) {
                           std::string name = strategy_name(param_info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(CrossLayerTest2, PosixIssuesMoreRequestsThanList) {
  auto config = test_config();
  config.strategy = Strategy::WWPosix;
  const auto posix = run_simulation(config);
  config.strategy = Strategy::WWList;
  const auto list = run_simulation(config);
  EXPECT_GT(posix.fs.server_requests, list.fs.server_requests);
  // ... while moving the same bytes.
  EXPECT_EQ(posix.fs.server_bytes, list.fs.server_bytes);
}

TEST(CrossLayerTest2, MwWritesAreContiguousFewPairs) {
  auto config = test_config();
  config.strategy = Strategy::MW;
  const auto stats = run_simulation(config);
  // One contiguous region per query touching <= server_count servers each.
  const std::uint64_t max_pairs =
      static_cast<std::uint64_t>(config.workload.query_count) *
      config.model.pfs.layout.server_count();
  EXPECT_LE(stats.fs.server_pairs, max_pairs);
}

TEST(CrossLayerTest2, DbModelingAddsReadsNotWrites) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  const auto without = run_simulation(config);
  config.workload.database_bytes = 64ull << 20;
  config.worker_memory_bytes = 8ull << 20;
  const auto with = run_simulation(config);
  EXPECT_EQ(with.fs.server_bytes, without.fs.server_bytes);
  EXPECT_GT(with.db_bytes_read, 0u);
}

TEST(CrossLayerTest2, QuerySyncDoesNotChangeIoVolume) {
  auto config = test_config();
  config.strategy = Strategy::WWList;
  const auto nosync = run_simulation(config);
  config.query_sync = true;
  const auto sync = run_simulation(config);
  EXPECT_EQ(nosync.fs.server_bytes, sync.fs.server_bytes);
  EXPECT_EQ(nosync.output_bytes, sync.output_bytes);
}

}  // namespace
