/// Cross-engine byte-identity suite (DESIGN.md §9): the parallel DES
/// engine must produce bit-identical simulated results to the serial
/// scheduler for every strategy and every feature that composes with it
/// (query sync, hybrid groups, fault injection, crash/resume, open-loop
/// serving), at every thread count.  Any divergence is an engine bug by
/// definition — the simulated world must not know how it is executed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/config.hpp"
#include "core/simulation.hpp"
#include "fault/fault.hpp"
#include "sim/time.hpp"

namespace {

using namespace s3asim;
using core::EngineMode;
using core::SimConfig;

SimConfig with_engine(SimConfig config, EngineMode mode, unsigned threads) {
  config.engine.mode = mode;
  config.engine.threads = threads;
  return config;
}

std::string serial_json(const SimConfig& config) {
  return core::run_simulation(with_engine(config, EngineMode::Serial, 0))
      .to_json();
}

std::string parallel_json(const SimConfig& config, unsigned threads) {
  return core::run_simulation(
             with_engine(config, EngineMode::Parallel, threads))
      .to_json();
}

TEST(EngineIdentityTest, AllStrategiesAsyncAcrossThreadCounts) {
  for (const auto strategy : bench::paper_strategies()) {
    SimConfig config = core::test_config();
    config.nprocs = 8;
    config.strategy = strategy;
    const std::string baseline = serial_json(config);
    for (const unsigned threads : {2u, 4u, 8u})
      EXPECT_EQ(parallel_json(config, threads), baseline)
          << core::strategy_name(strategy) << " at " << threads << " threads";
  }
}

TEST(EngineIdentityTest, AllStrategiesQuerySync) {
  for (const auto strategy : bench::paper_strategies()) {
    SimConfig config = core::test_config();
    config.nprocs = 8;
    config.strategy = strategy;
    config.query_sync = true;
    EXPECT_EQ(parallel_json(config, 4), serial_json(config))
        << core::strategy_name(strategy);
  }
}

TEST(EngineIdentityTest, PaperConfigMatches) {
  // The exact §3.3 setup the figures are built from.
  const SimConfig config = core::paper_config();
  EXPECT_EQ(parallel_json(config, 4), serial_json(config));
}

TEST(EngineIdentityTest, HybridSegmentationMatches) {
  SimConfig config = core::test_config();
  config.nprocs = 8;
  const std::string baseline =
      core::run_hybrid_simulation(with_engine(config, EngineMode::Serial, 0), 2)
          .to_json();
  for (const unsigned threads : {2u, 4u}) {
    const std::string parallel =
        core::run_hybrid_simulation(
            with_engine(config, EngineMode::Parallel, threads), 2)
            .to_json();
    EXPECT_EQ(parallel, baseline) << threads << " threads";
  }
}

TEST(EngineIdentityTest, FaultInjectionMatches) {
  SimConfig config = core::test_config();
  config.nprocs = 8;
  config.fault.kills.push_back(fault::WorkerKill{2, sim::milliseconds(1)});
  EXPECT_EQ(parallel_json(config, 4), serial_json(config));
}

TEST(EngineIdentityTest, CrashResumeMatches) {
  SimConfig config = core::test_config();
  config.nprocs = 8;
  config.fault.crash_at = sim::milliseconds(2);
  const auto serial =
      core::run_with_resume(with_engine(config, EngineMode::Serial, 0));
  const auto parallel =
      core::run_with_resume(with_engine(config, EngineMode::Parallel, 4));
  EXPECT_EQ(parallel.crashed, serial.crashed);
  EXPECT_EQ(parallel.resume_query, serial.resume_query);
  EXPECT_EQ(parallel.crashed_seconds, serial.crashed_seconds);
  EXPECT_EQ(parallel.resumed_seconds, serial.resumed_seconds);
  EXPECT_EQ(parallel.total_seconds, serial.total_seconds);
  EXPECT_EQ(parallel.full.to_json(), serial.full.to_json());
  EXPECT_EQ(parallel.resumed.to_json(), serial.resumed.to_json());
}

TEST(EngineIdentityTest, OpenLoopServingMatches) {
  SimConfig config = core::test_config();
  config.nprocs = 8;
  config.serving.arrival_rate_hz = 2.0;
  EXPECT_EQ(parallel_json(config, 4), serial_json(config));
}

TEST(EngineIdentityTest, RepeatedParallelRunsAgree) {
  // Two parallel executions (different host interleavings) must agree with
  // each other, not just with the serial reference.
  SimConfig config = core::test_config();
  config.nprocs = 8;
  EXPECT_EQ(parallel_json(config, 4), parallel_json(config, 4));
}

}  // namespace
