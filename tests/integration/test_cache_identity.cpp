/// Cache-enabled byte-identity suite: with the client-side write-back
/// cache on (DESIGN.md §10), the simulated results must stay bit-identical
/// across every execution engine — serial scheduler, `--jobs N` sweep
/// parallelism, and the parallel DES engine at several thread counts.
/// Lease grants, revocation round trips, and flush-behind evictions all
/// ride the simulated clock, so no host interleaving may leak through.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/config.hpp"
#include "core/simulation.hpp"
#include "util/units.hpp"

namespace {

using namespace s3asim;
using core::EngineMode;
using core::SimConfig;
using core::Strategy;

/// The strategies the cache affects most directly: batched master writes,
/// per-call POSIX writes (token-contention worst case), and aggregation.
const Strategy kCacheStrategies[] = {Strategy::MW, Strategy::WWPosix,
                                     Strategy::WWAggr};

SimConfig cached_config(Strategy strategy,
                        std::uint64_t capacity = util::MiB) {
  SimConfig config = core::test_config();
  config.nprocs = 8;
  config.strategy = strategy;
  config.sync_after_write = false;  // let the cache absorb writes
  config.model.pfs.cache.capacity_bytes = capacity;
  config.model.pfs.cache.block_bytes = 4 * util::KiB;
  config.model.pfs.cache.token_bytes = 16 * util::KiB;
  return config;
}

SimConfig with_engine(SimConfig config, EngineMode mode, unsigned threads) {
  config.engine.mode = mode;
  config.engine.threads = threads;
  return config;
}

std::string serial_json(const SimConfig& config) {
  return core::run_simulation(with_engine(config, EngineMode::Serial, 0))
      .to_json();
}

std::string parallel_json(const SimConfig& config, unsigned threads) {
  return core::run_simulation(
             with_engine(config, EngineMode::Parallel, threads))
      .to_json();
}

TEST(CacheIdentityTest, ParallelEngineMatchesSerialAcrossThreadCounts) {
  for (const Strategy strategy : kCacheStrategies) {
    const SimConfig config = cached_config(strategy);
    const std::string baseline = serial_json(config);
    for (const unsigned threads : {2u, 4u})
      EXPECT_EQ(parallel_json(config, threads), baseline)
          << core::strategy_name(strategy) << " at " << threads << " threads";
  }
}

TEST(CacheIdentityTest, TinyCapacityEvictionPressureMatches) {
  // A cache small enough to force flush-behind evictions mid-run is the
  // hardest case: eviction order depends on LRU state that must evolve
  // identically under any engine.
  for (const Strategy strategy : kCacheStrategies) {
    const SimConfig config =
        cached_config(strategy, /*capacity=*/32 * util::KiB);
    EXPECT_EQ(parallel_json(config, 4), serial_json(config))
        << core::strategy_name(strategy);
  }
}

TEST(CacheIdentityTest, SyncAfterWriteMatches) {
  // sync_after_write flushes the cache after every write burst; the
  // flush/lease interleaving must still be engine-invariant.
  for (const Strategy strategy : kCacheStrategies) {
    SimConfig config = cached_config(strategy);
    config.sync_after_write = true;
    EXPECT_EQ(parallel_json(config, 4), serial_json(config))
        << core::strategy_name(strategy);
  }
}

TEST(CacheIdentityTest, JobsSweepMatchesSerialSweep) {
  // `--jobs 4` runs cache-enabled points on a thread pool; grid-order
  // results must be byte-identical to the serial sweep.
  auto grid = [] {
    std::vector<bench::SweepPoint> points;
    for (const Strategy strategy : kCacheStrategies)
      points.push_back({core::strategy_name(strategy), [strategy] {
                          return core::run_simulation(cached_config(strategy));
                        }});
    return points;
  };
  const auto serial = bench::run_sweep(grid(), 1);
  const auto parallel = bench::run_sweep(grid(), 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(parallel[i].stats.to_json(), serial[i].stats.to_json())
        << serial[i].label;
}

TEST(CacheIdentityTest, RepeatedParallelRunsAgree) {
  const SimConfig config = cached_config(Strategy::WWAggr);
  EXPECT_EQ(parallel_json(config, 4), parallel_json(config, 4));
}

TEST(CacheIdentityTest, CacheStatsSurfaceInRunStats) {
  const SimConfig config = cached_config(Strategy::MW);
  const core::RunStats stats = core::run_simulation(config);
  EXPECT_TRUE(stats.cache.enabled);
  EXPECT_GT(stats.cache.token_grants, 0u);
  EXPECT_GT(stats.cache.write_misses, 0u);
  EXPECT_NE(stats.to_json().find("\"cache\""), std::string::npos);
}

TEST(CacheIdentityTest, CacheOffOmitsCacheSection) {
  SimConfig config = core::test_config();
  config.nprocs = 8;
  const core::RunStats stats = core::run_simulation(config);
  EXPECT_FALSE(stats.cache.enabled);
  EXPECT_EQ(stats.to_json().find("\"cache\""), std::string::npos);
}

}  // namespace
