#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "util/rng.hpp"

/// Property-based sweep: randomized-but-seeded configurations must always
/// terminate, verify their output file exactly, account every task, and
/// keep per-rank phase sums equal to wall time — across every strategy.

namespace {

using namespace s3asim::core;
using s3asim::util::Xoshiro256;

SimConfig random_config(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  SimConfig config;
  config.nprocs = static_cast<std::uint32_t>(rng.uniform_u64(2, 12));
  const Strategy strategies[] = {Strategy::MW, Strategy::WWPosix,
                                 Strategy::WWList, Strategy::WWColl,
                                 Strategy::WWCollList};
  config.strategy = strategies[rng.uniform_u64(0, 4)];
  config.query_sync = rng.uniform() < 0.5;
  config.compute_speed = 0.25 + rng.uniform() * 4.0;
  config.queries_per_flush = static_cast<std::uint32_t>(rng.uniform_u64(1, 4));
  config.sync_after_write = rng.uniform() < 0.8;

  config.workload.seed = seed * 31 + 7;
  config.workload.query_count = static_cast<std::uint32_t>(rng.uniform_u64(1, 6));
  config.workload.fragment_count =
      static_cast<std::uint32_t>(rng.uniform_u64(1, 12));
  config.workload.result_count_min =
      static_cast<std::uint32_t>(rng.uniform_u64(1, 30));
  config.workload.result_count_max =
      config.workload.result_count_min +
      static_cast<std::uint32_t>(rng.uniform_u64(0, 50));
  config.workload.min_result_bytes = rng.uniform_u64(16, 2048);
  config.workload.query_histogram =
      s3asim::util::BoxHistogram{{{64, 4096, 1.0}}};
  config.workload.database_histogram =
      s3asim::util::BoxHistogram{{{64, 1 + rng.uniform_u64(64, 100'000), 1.0}}};

  config.model.pfs.layout = s3asim::pfs::Layout(
      1ull << rng.uniform_u64(9, 17),                       // 512 B – 128 KiB
      static_cast<std::uint32_t>(rng.uniform_u64(1, 12)));  // servers
  if (rng.uniform() < 0.3) {
    config.workload.database_bytes = rng.uniform_u64(1, 64) << 20;
    config.worker_memory_bytes = rng.uniform_u64(1, 32) << 20;
    config.fragment_affinity = rng.uniform() < 0.5;
  }
  if (rng.uniform() < 0.2) config.mw_nonblocking_io = true;
  return config;
}

class RandomConfigTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConfigTest, TerminatesAndVerifies) {
  const auto config = random_config(GetParam());
  const auto stats = run_simulation(config);

  EXPECT_TRUE(stats.file_exact)
      << "strategy=" << strategy_name(config.strategy)
      << " procs=" << config.nprocs << " sync=" << config.query_sync
      << " flush=" << config.queries_per_flush;
  EXPECT_EQ(stats.overlap_count, 0u);

  std::uint64_t tasks = 0;
  for (const auto& rank : stats.ranks) {
    tasks += rank.tasks_processed;
    EXPECT_EQ(rank.phases.total(), rank.wall);
  }
  EXPECT_EQ(tasks, static_cast<std::uint64_t>(config.workload.query_count) *
                       config.workload.fragment_count);

  // Determinism: the same config reruns identically.
  const auto again = run_simulation(config);
  EXPECT_DOUBLE_EQ(stats.wall_seconds, again.wall_seconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigTest,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
