/// Zero-perturbation contract of the observability layer (DESIGN.md §8):
/// attaching a TraceLog and/or metrics Registry must not change a single
/// bit of a run's results.  Every comparison here is on the full RunStats
/// JSON dump (and on actual bench CSV bytes), not on summaries.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/simulation.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "trace/trace.hpp"

namespace {

using namespace s3asim;
using namespace s3asim::core;

constexpr Strategy kAllStrategies[] = {Strategy::MW, Strategy::WWPosix,
                                       Strategy::WWList, Strategy::WWColl,
                                       Strategy::WWCollList};

/// One run with full observability attached (trace + metrics + profiler).
RunStats run_observed(const SimConfig& config, trace::TraceLog* trace_log,
                      obs::Registry* registry) {
  const Observability observe{trace_log, registry};
  return run_simulation(config, observe);
}

TEST(ObservabilityDeterminismTest, StatsIdenticalWithAndWithoutSinks) {
  for (const Strategy strategy : kAllStrategies) {
    for (const bool sync : {false, true}) {
      auto config = test_config();
      config.strategy = strategy;
      config.query_sync = sync;
      const std::string bare = run_simulation(config).to_json();
      trace::TraceLog trace_log;
      obs::Registry registry;
      const std::string observed =
          run_observed(config, &trace_log, &registry).to_json();
      EXPECT_EQ(bare, observed)
          << "strategy " << strategy_name(strategy) << " sync " << sync;
      EXPECT_GT(trace_log.size(), 0u);
      EXPECT_GT(trace_log.spans().size(), 0u);
      EXPECT_GT(trace_log.flows().size(), 0u);
      EXPECT_EQ(trace_log.dropped(), 0u);
    }
  }
}

TEST(ObservabilityDeterminismTest, MetricsOnlyAndTraceOnlyAlsoIdentical) {
  auto config = test_config();
  const std::string bare = run_simulation(config).to_json();
  {
    obs::Registry registry;
    EXPECT_EQ(bare, run_observed(config, nullptr, &registry).to_json());
  }
  {
    trace::TraceLog trace_log;
    EXPECT_EQ(bare, run_observed(config, &trace_log, nullptr).to_json());
  }
}

TEST(ObservabilityDeterminismTest, HybridRunsUnperturbed) {
  auto config = test_config();
  config.nprocs = 8;
  const std::string bare = run_hybrid_simulation(config, 2).to_json();
  trace::TraceLog trace_log;
  obs::Registry registry;
  const Observability observe{&trace_log, &registry};
  EXPECT_EQ(bare, run_hybrid_simulation(config, 2, observe).to_json());
}

TEST(ObservabilityDeterminismTest, FaultyRunsUnperturbed) {
  auto config = test_config();
  config.nprocs = 6;
  config.fault = fault::parse_fault_plan("kill:worker=2,at=0.01s");
  const std::string bare = run_simulation(config).to_json();
  trace::TraceLog trace_log;
  obs::Registry registry;
  const std::string observed =
      run_observed(config, &trace_log, &registry).to_json();
  EXPECT_EQ(bare, observed);
  EXPECT_GE(registry.counter("fault.workers_died").value(), 1u);
}

TEST(ObservabilityDeterminismTest, ResumeRunsUnperturbed) {
  auto config = test_config();
  config.fault = fault::parse_fault_plan("crash:at=0.02s");
  const ResumeOutcome bare = run_with_resume(config);
  trace::TraceLog trace_log;
  obs::Registry registry;
  const Observability observe{&trace_log, &registry};
  const ResumeOutcome observed = run_with_resume(config, observe);
  EXPECT_EQ(bare.crashed, observed.crashed);
  EXPECT_EQ(bare.resume_query, observed.resume_query);
  EXPECT_EQ(bare.full.to_json(), observed.full.to_json());
  if (bare.crashed && bare.resume_query < config.workload.query_count) {
    EXPECT_EQ(bare.resumed.to_json(), observed.resumed.to_json());
  }
}

TEST(ObservabilityDeterminismTest, PublishedMetricsMatchRunStats) {
  auto config = test_config();
  obs::Registry registry;
  const RunStats stats = run_observed(config, nullptr, &registry);
  EXPECT_EQ(registry.counter("core.output_bytes").value(), stats.output_bytes);
  EXPECT_EQ(registry.counter("sim.sched.events").value(), stats.events);
  std::uint64_t tasks = 0;
  for (const auto& rank : stats.ranks) tasks += rank.tasks_processed;
  EXPECT_EQ(registry.counter("core.tasks_processed").value(), tasks);
  EXPECT_GT(registry.counter("mpi.messages").value(), 0u);
  EXPECT_GT(registry.counter("pfs.write.requests").value(), 0u);
  EXPECT_GT(registry.histogram("pfs.write.service_seconds").count(), 0u);
  EXPECT_GT(registry.histogram("mpi.message.delivery_seconds").count(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("core.wall_seconds").value(),
                   stats.wall_seconds);
  // An explicit zero, so the manifest always carries the drop counter.
  EXPECT_EQ(registry.counter("trace.intervals_dropped").value(), 0u);
}

std::string slurp(const std::string& path) {
  std::ifstream input(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(input)) << path;
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return buffer.str();
}

TEST(ObservabilityDeterminismTest, BenchCsvBytesIdenticalTracedVsUntraced) {
  // The bench CSVs are derived from RunStats; write the fig3-style phase
  // breakdown from a traced run and an untraced run and require the files
  // to match byte-for-byte.
  const std::string dir = ::testing::TempDir() + "s3asim_obs_csv";
  ASSERT_EQ(::setenv("S3ASIM_RESULTS_DIR", dir.c_str(), 1), 0);
  auto config = test_config();

  const RunStats untraced = run_simulation(config);
  trace::TraceLog trace_log;
  obs::Registry registry;
  const RunStats traced = run_observed(config, &trace_log, &registry);

  bench::print_phase_breakdown("untraced", "procs", {"5"}, {untraced},
                               "obs_off");
  bench::print_phase_breakdown("traced", "procs", {"5"}, {traced}, "obs_on");
  EXPECT_EQ(slurp(dir + "/obs_off.csv"), slurp(dir + "/obs_on.csv"));
  ASSERT_EQ(::unsetenv("S3ASIM_RESULTS_DIR"), 0);
}

}  // namespace
