#include "mpiio/datatype.hpp"

#include <gtest/gtest.h>

namespace {

using s3asim::mpiio::Datatype;
using s3asim::mpiio::Extent;

TEST(DatatypeTest, ContiguousBasics) {
  const auto type = Datatype::contiguous(100);
  EXPECT_EQ(type.size(), 100u);
  EXPECT_EQ(type.extent(), 100u);
  EXPECT_EQ(type.block_count(), 1u);
}

TEST(DatatypeTest, ContiguousZeroIsEmpty) {
  const auto type = Datatype::contiguous(0);
  EXPECT_EQ(type.size(), 0u);
  EXPECT_EQ(type.block_count(), 0u);
}

TEST(DatatypeTest, VectorLayout) {
  // 3 blocks of 10 bytes strided by 25: [0,10) [25,35) [50,60).
  const auto type = Datatype::vector(3, 10, 25);
  EXPECT_EQ(type.size(), 30u);
  EXPECT_EQ(type.extent(), 60u);
  ASSERT_EQ(type.block_count(), 3u);
  EXPECT_EQ(type.blocks()[1], (Extent{25, 10}));
}

TEST(DatatypeTest, VectorRejectsOverlappingStride) {
  EXPECT_THROW((void)Datatype::vector(3, 10, 5), std::invalid_argument);
}

TEST(DatatypeTest, VectorDegenerateCount) {
  const auto type = Datatype::vector(0, 10, 25);
  EXPECT_EQ(type.size(), 0u);
  EXPECT_EQ(type.extent(), 0u);
}

TEST(DatatypeTest, IndexedLayout) {
  const auto type = Datatype::indexed({Extent{5, 10}, Extent{40, 4}});
  EXPECT_EQ(type.size(), 14u);
  EXPECT_EQ(type.extent(), 44u);
}

TEST(DatatypeTest, IndexedRejectsUnsortedOrOverlapping) {
  EXPECT_THROW((void)Datatype::indexed({Extent{40, 4}, Extent{5, 10}}),
               std::invalid_argument);
  EXPECT_THROW((void)Datatype::indexed({Extent{0, 10}, Extent{5, 10}}),
               std::invalid_argument);
}

TEST(DatatypeTest, IndexedDropsEmptyBlocks) {
  const auto type = Datatype::indexed({Extent{0, 10}, Extent{10, 0}, Extent{20, 5}});
  EXPECT_EQ(type.block_count(), 2u);
}

TEST(DatatypeTest, RepeatedComposition) {
  const auto element = Datatype::vector(2, 5, 10);  // extent 15, size 10
  const auto type = Datatype::repeated(element, 3);
  EXPECT_EQ(type.size(), 30u);
  EXPECT_EQ(type.extent(), 45u);
  EXPECT_EQ(type.block_count(), 6u);
  EXPECT_EQ(type.blocks()[2], (Extent{15, 5}));  // second copy, first block
}

TEST(DatatypeTest, FlattenAppliesFileOffset) {
  const auto type = Datatype::vector(2, 10, 30);
  const auto extents = type.flatten(1000);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0], (Extent{1000, 10}));
  EXPECT_EQ(extents[1], (Extent{1030, 10}));
}

TEST(DatatypeTest, FlattenCoalescesAdjacentBlocks) {
  // stride == block_length ⇒ logically contiguous.
  const auto type = Datatype::vector(4, 10, 10);
  const auto extents = type.flatten(0);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0], (Extent{0, 40}));
}

TEST(DatatypeTest, FlattenSizeInvariant) {
  const auto type = Datatype::indexed({Extent{3, 7}, Extent{20, 13}, Extent{50, 1}});
  std::uint64_t total = 0;
  for (const auto& extent : type.flatten(12345)) total += extent.length;
  EXPECT_EQ(total, type.size());
}

}  // namespace
