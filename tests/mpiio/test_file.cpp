#include "mpiio/file.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace {

using namespace s3asim;
using mpiio::CollectiveAlgorithm;
using mpiio::Extent;
using mpiio::File;
using mpiio::Hints;
using mpiio::NoncontigMethod;
using sim::Process;
using sim::Scheduler;
using sim::Time;

net::LinkParams fast_net() {
  net::LinkParams params;
  params.latency = 10;
  params.bandwidth_bps = 1e9;
  params.per_message_overhead = 0;
  return params;
}

pfs::PfsParams small_fs() {
  pfs::PfsParams params;
  params.layout = pfs::Layout(1024, 4);
  params.disk = pfs::DiskModel::test_model();
  return params;
}

/// World: `ranks` compute endpoints followed by 4 PFS server endpoints.
struct Fixture {
  Scheduler sched;
  net::Network network;
  mpi::Comm comm;
  pfs::Pfs fs;
  pfs::FileHandle handle = 0;
  std::unique_ptr<File> file;

  explicit Fixture(mpi::Rank ranks, Hints hints = {},
                   std::vector<mpi::Rank> participants = {})
      : network(sched, ranks + 4, fast_net()),
        comm(sched, network, ranks),
        fs(sched, network, ranks, small_fs()) {
    if (participants.empty())
      for (mpi::Rank r = 0; r < ranks; ++r) participants.push_back(r);
    // Create the file synchronously at time zero through rank 0.
    auto create = [](Fixture& fx) -> Process {
      fx.handle = co_await fx.fs.create_file(fx.comm.endpoint_of(0), "results");
    };
    sched.spawn(create(*this));
    sched.run();
    file = std::make_unique<File>(sched, network, fs, comm, handle,
                                  std::move(participants), hints);
  }

  ~Fixture() {
    fs.shutdown();
    sched.run();
  }
};

TEST(MpiioFileTest, WriteAtRecordsContiguousExtent) {
  Fixture f(2);
  auto prog = [](Fixture& fx) -> Process {
    co_await fx.file->write_at(0, 0, 3000, /*query=*/4);
    co_await fx.file->sync(0);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  EXPECT_TRUE(f.file->image().covers_exactly(3000));
  EXPECT_EQ(f.file->image().history()[0].query, 4u);
}

TEST(MpiioFileTest, NoncontigPosixAndListProduceSameImage) {
  const std::vector<Extent> extents{{0, 100}, {500, 100}, {2048, 100}};
  for (const auto method : {NoncontigMethod::Posix, NoncontigMethod::ListIo}) {
    Fixture f(2);
    auto prog = [](Fixture& fx, std::vector<Extent> xs,
                   NoncontigMethod m) -> Process {
      co_await fx.file->write_noncontig(1, std::move(xs), m);
    };
    f.sched.spawn(prog(f, extents, method));
    f.sched.run();
    EXPECT_EQ(f.file->image().covered_bytes(), 300u);
    EXPECT_EQ(f.file->image().overlap_count(), 0u);
  }
}

TEST(MpiioFileTest, WriteTypedFlattensDatatype) {
  Fixture f(1);
  auto prog = [](Fixture& fx) -> Process {
    const auto type = mpiio::Datatype::vector(3, 50, 100);
    co_await fx.file->write_typed(0, 1000, type, NoncontigMethod::ListIo);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  EXPECT_EQ(f.file->image().covered_bytes(), 150u);
  EXPECT_EQ(f.file->image().history().size(), 3u);
  EXPECT_EQ(f.file->image().history()[0].offset, 1000u);
}

TEST(MpiioFileTest, CollectiveTwoPhaseCoversUnionExactly) {
  Fixture f(4);
  // Interleaved extents: rank r owns pieces r, r+4, r+8, ... of 16×100 B.
  auto participant = [](Fixture& fx, mpi::Rank rank) -> Process {
    std::vector<Extent> extents;
    for (std::uint64_t k = rank; k < 16; k += 4)
      extents.push_back(Extent{k * 100, 100});
    co_await fx.file->write_at_all(rank, std::move(extents), /*query=*/1);
  };
  for (mpi::Rank r = 0; r < 4; ++r) f.sched.spawn(participant(f, r));
  f.sched.run();
  EXPECT_TRUE(f.file->image().covers_exactly(1600));
}

TEST(MpiioFileTest, CollectiveAllLeaveAtSameTime) {
  Fixture f(3);
  std::vector<Time> leave(3, -1);
  auto participant = [](Fixture& fx, mpi::Rank rank, Time stagger,
                        Time& out) -> Process {
    co_await fx.sched.delay(stagger);
    std::vector<Extent> extents{Extent{rank * 1000ull, 1000}};
    co_await fx.file->write_at_all(rank, std::move(extents));
    out = fx.sched.now();
  };
  f.sched.spawn(participant(f, 0, 0, leave[0]));
  f.sched.spawn(participant(f, 1, 50'000, leave[1]));
  f.sched.spawn(participant(f, 2, 200'000, leave[2]));
  f.sched.run();
  EXPECT_EQ(leave[0], leave[1]);
  EXPECT_EQ(leave[1], leave[2]);
  EXPECT_GE(leave[0], 200'000);
}

TEST(MpiioFileTest, CollectiveWaitTracksStragglerStall) {
  Fixture f(2);
  auto participant = [](Fixture& fx, mpi::Rank rank, Time stagger) -> Process {
    co_await fx.sched.delay(stagger);
    std::vector<Extent> extents{Extent{rank * 100ull, 100}};
    co_await fx.file->write_at_all(rank, std::move(extents));
  };
  f.sched.spawn(participant(f, 0, 0));
  f.sched.spawn(participant(f, 1, 1'000'000));
  f.sched.run();
  EXPECT_GE(f.file->collective_wait(0), 1'000'000);
  EXPECT_LT(f.file->collective_wait(1), 1'000'000);
}

TEST(MpiioFileTest, CollectiveWithEmptyContribution) {
  Fixture f(3);
  auto participant = [](Fixture& fx, mpi::Rank rank) -> Process {
    std::vector<Extent> extents;
    if (rank == 1) extents.push_back(Extent{0, 5000});
    co_await fx.file->write_at_all(rank, std::move(extents));
  };
  for (mpi::Rank r = 0; r < 3; ++r) f.sched.spawn(participant(f, r));
  f.sched.run();
  EXPECT_TRUE(f.file->image().covers_exactly(5000));
}

TEST(MpiioFileTest, CollectiveAllEmptyIsHarmless) {
  Fixture f(2);
  auto participant = [](Fixture& fx, mpi::Rank rank) -> Process {
    co_await fx.file->write_at_all(rank, {});
  };
  for (mpi::Rank r = 0; r < 2; ++r) f.sched.spawn(participant(f, r));
  f.sched.run();
  EXPECT_EQ(f.file->image().covered_bytes(), 0u);
}

TEST(MpiioFileTest, SequentialCollectiveRoundsMatchUp) {
  Fixture f(2);
  auto participant = [](Fixture& fx, mpi::Rank rank) -> Process {
    for (std::uint64_t round = 0; round < 3; ++round) {
      std::vector<Extent> extents{
          Extent{round * 2000 + rank * 1000ull, 1000}};
      co_await fx.file->write_at_all(rank, std::move(extents), round);
    }
  };
  for (mpi::Rank r = 0; r < 2; ++r) f.sched.spawn(participant(f, r));
  f.sched.run();
  EXPECT_TRUE(f.file->image().covers_exactly(6000));
}

TEST(MpiioFileTest, ListWithSyncAlgorithmCoversSameBytes) {
  Hints hints;
  hints.collective_algorithm = CollectiveAlgorithm::ListWithSync;
  Fixture f(4, hints);
  auto participant = [](Fixture& fx, mpi::Rank rank) -> Process {
    std::vector<Extent> extents;
    for (std::uint64_t k = rank; k < 16; k += 4)
      extents.push_back(Extent{k * 100, 100});
    co_await fx.file->write_at_all(rank, std::move(extents));
  };
  for (mpi::Rank r = 0; r < 4; ++r) f.sched.spawn(participant(f, r));
  f.sched.run();
  EXPECT_TRUE(f.file->image().covers_exactly(1600));
}

TEST(MpiioFileTest, CbNodesLimitsAggregators) {
  Hints hints;
  hints.cb_nodes = 1;
  Fixture f(4, hints);
  auto participant = [](Fixture& fx, mpi::Rank rank) -> Process {
    std::vector<Extent> extents{Extent{rank * 1000ull, 1000}};
    co_await fx.file->write_at_all(rank, std::move(extents));
  };
  for (mpi::Rank r = 0; r < 4; ++r) f.sched.spawn(participant(f, r));
  f.sched.run();
  EXPECT_TRUE(f.file->image().covers_exactly(4000));
  // With one aggregator, every recorded write must come from rank 0.
  for (const auto& write : f.file->image().history())
    EXPECT_EQ(write.writer, 0u);
}

TEST(MpiioFileTest, NonParticipantRankRejected) {
  Fixture f(3, Hints{}, /*participants=*/{1, 2});
  auto prog = [](Fixture& fx) -> Process {
    co_await fx.file->write_at_all(0, {});
  };
  f.sched.spawn(prog(f));
  EXPECT_THROW(f.sched.run(), std::invalid_argument);
}

TEST(MpiioFileTest, SubsetParticipantsCollective) {
  Fixture f(4, Hints{}, /*participants=*/{1, 2, 3});
  auto participant = [](Fixture& fx, mpi::Rank rank) -> Process {
    std::vector<Extent> extents{Extent{(rank - 1) * 500ull, 500}};
    co_await fx.file->write_at_all(rank, std::move(extents));
  };
  for (mpi::Rank r = 1; r < 4; ++r) f.sched.spawn(participant(f, r));
  f.sched.run();
  EXPECT_TRUE(f.file->image().covers_exactly(1500));
}

TEST(MpiioFileTest, SmallCbBufferSplitsAggregatorWritesIntoRounds) {
  // 4 participants each contributing 4 KiB to a 16 KiB region.  With
  // cb_nodes=1 a single aggregator writes everything; shrinking
  // cb_buffer_size below its domain forces multiple write rounds, i.e.
  // more (but smaller) file-system requests.
  auto run_with_buffer = [](std::uint64_t buffer) {
    Hints hints;
    hints.cb_nodes = 1;
    hints.cb_buffer_size = buffer;
    hints.two_phase_round_overhead = 0;
    Fixture f(4, hints);
    auto participant = [](Fixture& fx, mpi::Rank rank) -> Process {
      std::vector<Extent> extents{Extent{rank * 4096ull, 4096}};
      co_await fx.file->write_at_all(rank, std::move(extents));
    };
    for (mpi::Rank r = 0; r < 4; ++r) f.sched.spawn(participant(f, r));
    f.sched.run();
    EXPECT_TRUE(f.file->image().covers_exactly(16384));
    return f.fs.aggregate_stats().requests;
  };
  const auto one_round = run_with_buffer(1 << 20);
  const auto many_rounds = run_with_buffer(2048);
  EXPECT_GT(many_rounds, one_round);
}

TEST(MpiioFileTest, TwoPhaseOverheadDelaysCollective) {
  auto run_with_overhead = [](s3asim::sim::Time overhead) {
    Hints hints;
    hints.two_phase_round_overhead = overhead;
    Fixture f(2, hints);
    auto participant = [](Fixture& fx, mpi::Rank rank) -> Process {
      std::vector<Extent> extents{Extent{rank * 1000ull, 1000}};
      co_await fx.file->write_at_all(rank, std::move(extents));
    };
    for (mpi::Rank r = 0; r < 2; ++r) f.sched.spawn(participant(f, r));
    f.sched.run();
    return f.sched.now();
  };
  const auto fast = run_with_overhead(0);
  const auto slow = run_with_overhead(s3asim::sim::milliseconds(50));
  EXPECT_GE(slow, fast + s3asim::sim::milliseconds(50));
}

}  // namespace
