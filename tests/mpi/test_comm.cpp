#include "mpi/comm.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace s3asim;
using mpi::Comm;
using mpi::kAnySource;
using mpi::kAnyTag;
using mpi::Message;
using sim::Process;
using sim::Scheduler;
using sim::Time;

struct Fixture {
  Scheduler sched;
  net::Network network;
  Comm comm;

  explicit Fixture(mpi::Rank ranks)
      : network(sched, ranks, net::LinkParams::slow_test_network()),
        comm(sched, network, ranks) {}
};

TEST(CommTest, BlockingSendRecvDeliversPayload) {
  Fixture f(2);
  std::string got;
  auto sender = [](Fixture& fx) -> Process {
    co_await fx.comm.send(0, 1, /*tag=*/7, 100, std::string("hello"));
  };
  auto receiver = [](Fixture& fx, std::string& out) -> Process {
    const Message m = co_await fx.comm.recv(1, 0, 7);
    out = m.as<std::string>();
    EXPECT_EQ(m.source, 0u);
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(m.bytes, 100u);
  };
  f.sched.spawn(sender(f));
  f.sched.spawn(receiver(f, got));
  f.sched.run();
  EXPECT_EQ(got, "hello");
}

TEST(CommTest, RecvBlocksUntilMessageArrives) {
  Fixture f(2);
  Time recv_done = -1;
  auto sender = [](Fixture& fx) -> Process {
    co_await fx.sched.delay(5000);
    co_await fx.comm.send(0, 1, 1, 0);
  };
  auto receiver = [](Fixture& fx, Time& out) -> Process {
    (void)co_await fx.comm.recv(1, 0, 1);
    out = fx.sched.now();
  };
  f.sched.spawn(sender(f));
  f.sched.spawn(receiver(f, recv_done));
  f.sched.run();
  EXPECT_GE(recv_done, 5000 + 100'000);  // delay + latency
}

TEST(CommTest, UnexpectedMessageQueueHoldsEarlyArrivals) {
  Fixture f(2);
  int got = 0;
  auto sender = [](Fixture& fx) -> Process {
    co_await fx.comm.send(0, 1, 3, 0, 41);
  };
  auto receiver = [](Fixture& fx, int& out) -> Process {
    co_await fx.sched.delay(sim::seconds(1.0));  // message arrives first
    EXPECT_EQ(fx.comm.unexpected_count(1), 1u);
    const Message m = co_await fx.comm.recv(1, 0, 3);
    out = m.as<int>() + 1;
  };
  f.sched.spawn(sender(f));
  f.sched.spawn(receiver(f, got));
  f.sched.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(f.comm.unexpected_count(1), 0u);
}

TEST(CommTest, TagSelectivity) {
  Fixture f(2);
  std::vector<int> order;
  auto sender = [](Fixture& fx) -> Process {
    co_await fx.comm.send(0, 1, /*tag=*/10, 0, 1);
    co_await fx.comm.send(0, 1, /*tag=*/20, 0, 2);
  };
  auto receiver = [](Fixture& fx, std::vector<int>& log) -> Process {
    // Receive tag 20 first even though tag 10 arrived earlier.
    const Message m20 = co_await fx.comm.recv(1, 0, 20);
    log.push_back(m20.as<int>());
    const Message m10 = co_await fx.comm.recv(1, 0, 10);
    log.push_back(m10.as<int>());
  };
  f.sched.spawn(sender(f));
  f.sched.spawn(receiver(f, order));
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(CommTest, AnySourceMatchesFirstArrival) {
  Fixture f(3);
  mpi::Rank from = 99;
  auto sender = [](Fixture& fx, mpi::Rank rank, Time when) -> Process {
    co_await fx.sched.delay(when);
    co_await fx.comm.send(rank, 0, 5, 0);
  };
  auto receiver = [](Fixture& fx, mpi::Rank& out) -> Process {
    const Message m = co_await fx.comm.recv(0, kAnySource, 5);
    out = m.source;
  };
  f.sched.spawn(sender(f, 2, 100));
  f.sched.spawn(sender(f, 1, 50'000'000));
  f.sched.spawn(receiver(f, from));
  f.sched.run();
  EXPECT_EQ(from, 2u);
}

TEST(CommTest, AnyTagMatches) {
  Fixture f(2);
  int tag_seen = -1;
  auto sender = [](Fixture& fx) -> Process {
    co_await fx.comm.send(0, 1, 77, 0);
  };
  auto receiver = [](Fixture& fx, int& out) -> Process {
    const Message m = co_await fx.comm.recv(1, 0, kAnyTag);
    out = m.tag;
  };
  f.sched.spawn(sender(f));
  f.sched.spawn(receiver(f, tag_seen));
  f.sched.run();
  EXPECT_EQ(tag_seen, 77);
}

TEST(CommTest, NonOvertakingForIdenticalEnvelopes) {
  Fixture f(2);
  std::vector<int> order;
  auto sender = [](Fixture& fx) -> Process {
    co_await fx.comm.send(0, 1, 4, 10, 1);
    co_await fx.comm.send(0, 1, 4, 10, 2);
    co_await fx.comm.send(0, 1, 4, 10, 3);
  };
  auto receiver = [](Fixture& fx, std::vector<int>& log) -> Process {
    for (int i = 0; i < 3; ++i) {
      const Message m = co_await fx.comm.recv(1, 0, 4);
      log.push_back(m.as<int>());
    }
  };
  f.sched.spawn(sender(f));
  f.sched.spawn(receiver(f, order));
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CommTest, IsendTestTransitionsToComplete) {
  Fixture f(2);
  auto prog = [](Fixture& fx) -> Process {
    auto req = fx.comm.isend(0, 1, 9, 1024);
    EXPECT_FALSE(Comm::test(req));
    co_await Comm::wait(req);
    EXPECT_TRUE(Comm::test(req));
    // Drain the unexpected message so the test leaves a clean world.
    (void)co_await fx.comm.recv(1, 0, 9);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CommTest, IrecvBeforeSendCompletesOnArrival) {
  Fixture f(2);
  auto prog = [](Fixture& fx) -> Process {
    auto req = fx.comm.irecv(1, 0, 2);
    EXPECT_FALSE(Comm::test(req));
    auto send_req = fx.comm.isend(0, 1, 2, 64, std::string("x"));
    co_await Comm::wait(req);
    EXPECT_TRUE(Comm::test(req));
    EXPECT_EQ(req->message.as<std::string>(), "x");
    co_await Comm::wait(send_req);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  EXPECT_EQ(f.comm.posted_count(1), 0u);
}

TEST(CommTest, WaitAllCompletesAllRequests) {
  Fixture f(3);
  auto prog = [](Fixture& fx) -> Process {
    std::vector<mpi::Request> recvs;
    recvs.push_back(fx.comm.irecv(0, 1, 1));
    recvs.push_back(fx.comm.irecv(0, 2, 1));
    auto s1 = fx.comm.isend(1, 0, 1, 10);
    auto s2 = fx.comm.isend(2, 0, 1, 10);
    co_await Comm::wait_all(recvs);
    EXPECT_TRUE(Comm::test(recvs[0]));
    EXPECT_TRUE(Comm::test(recvs[1]));
    co_await Comm::wait(s1);
    co_await Comm::wait(s2);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CommTest, BarrierSynchronizesAllRanks) {
  Fixture f(4);
  std::vector<Time> after;
  auto party = [](Fixture& fx, Time arrive, std::vector<Time>& log) -> Process {
    co_await fx.sched.delay(arrive);
    co_await fx.comm.barrier();
    log.push_back(fx.sched.now());
  };
  f.sched.spawn(party(f, 10, after));
  f.sched.spawn(party(f, 2000, after));
  f.sched.spawn(party(f, 30, after));
  f.sched.spawn(party(f, 500, after));
  f.sched.run();
  ASSERT_EQ(after.size(), 4u);
  for (const Time t : after) {
    EXPECT_EQ(t, after[0]);
    EXPECT_GE(t, 2000);
  }
}

TEST(CommTest, BigMessageSlowerThanSmall) {
  Fixture f(3);
  Time small_done = -1, big_done = -1;
  auto send_and_time = [](Fixture& fx, mpi::Rank src, mpi::Rank dst,
                          std::uint64_t bytes, Time& out) -> Process {
    co_await fx.comm.send(src, dst, 1, bytes);
    out = fx.sched.now();
  };
  auto drain = [](Fixture& fx, mpi::Rank self, mpi::Rank src) -> Process {
    (void)co_await fx.comm.recv(self, src, 1);
  };
  f.sched.spawn(send_and_time(f, 0, 1, 100, small_done));
  f.sched.spawn(send_and_time(f, 2, 1, 1 << 20, big_done));
  f.sched.spawn(drain(f, 1, 0));
  f.sched.spawn(drain(f, 1, 2));
  f.sched.run();
  EXPECT_LT(small_done, big_done);
}

TEST(CommTest, InvalidRankRejected) {
  Fixture f(2);
  EXPECT_THROW(f.comm.isend(0, 9, 1, 0), std::invalid_argument);
  EXPECT_THROW(f.comm.irecv(9, 0, 1), std::invalid_argument);
}

TEST(CommTest, NegativeSendTagRejected) {
  Fixture f(2);
  EXPECT_THROW(f.comm.isend(0, 1, kAnyTag, 0), std::invalid_argument);
}

}  // namespace
