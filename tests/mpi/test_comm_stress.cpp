#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mpi/comm.hpp"
#include "util/rng.hpp"

/// Stress/property tests for the MPI layer: message conservation, ordering
/// under load, and wildcard matching with many concurrent peers.

namespace {

using namespace s3asim;
using mpi::Comm;
using sim::Process;
using sim::Scheduler;

struct Fixture {
  Scheduler sched;
  net::Network network;
  Comm comm;
  explicit Fixture(mpi::Rank ranks)
      : network(sched, ranks, net::LinkParams::myrinet2000()),
        comm(sched, network, ranks) {}
};

TEST(CommStressTest, ManyToOneAllMessagesArriveInPairOrder) {
  constexpr mpi::Rank kSenders = 12;
  constexpr int kPerSender = 40;
  Fixture f(kSenders + 1);

  auto sender = [](Fixture& fx, mpi::Rank rank) -> Process {
    for (int i = 0; i < kPerSender; ++i)
      co_await fx.comm.send(rank, kSenders, 1, 64 + static_cast<std::uint64_t>(i),
                            i);
  };
  std::map<mpi::Rank, std::vector<int>> received;
  auto receiver = [](Fixture& fx, std::map<mpi::Rank, std::vector<int>>& log)
      -> Process {
    for (int i = 0; i < static_cast<int>(kSenders) * kPerSender; ++i) {
      const mpi::Message m = co_await fx.comm.recv(kSenders, mpi::kAnySource, 1);
      log[m.source].push_back(m.as<int>());
    }
  };
  for (mpi::Rank rank = 0; rank < kSenders; ++rank)
    f.sched.spawn(sender(f, rank));
  f.sched.spawn(receiver(f, received));
  f.sched.run();

  ASSERT_EQ(received.size(), kSenders);
  for (const auto& [rank, values] : received) {
    ASSERT_EQ(values.size(), static_cast<std::size_t>(kPerSender));
    // MPI non-overtaking: per-sender order is preserved.
    for (int i = 0; i < kPerSender; ++i) EXPECT_EQ(values[static_cast<std::size_t>(i)], i);
  }
}

TEST(CommStressTest, RandomPairwiseTrafficBalances) {
  constexpr mpi::Rank kRanks = 6;
  Fixture f(kRanks);
  util::Xoshiro256 rng(2024);

  // Precompute a random traffic matrix so senders and receivers agree.
  std::vector<std::vector<int>> plan(kRanks, std::vector<int>(kRanks, 0));
  for (mpi::Rank src = 0; src < kRanks; ++src)
    for (mpi::Rank dst = 0; dst < kRanks; ++dst)
      if (src != dst) plan[src][dst] = static_cast<int>(rng.uniform_u64(0, 8));

  auto sender = [](Fixture& fx, mpi::Rank src,
                   const std::vector<std::vector<int>>& traffic) -> Process {
    for (mpi::Rank dst = 0; dst < kRanks; ++dst)
      for (int i = 0; i < traffic[src][dst]; ++i)
        co_await fx.comm.send(src, dst, 7, 128);
  };
  std::vector<int> received(kRanks, 0);
  auto receiver = [](Fixture& fx, mpi::Rank self, int expect,
                     std::vector<int>& log) -> Process {
    for (int i = 0; i < expect; ++i) {
      (void)co_await fx.comm.recv(self, mpi::kAnySource, 7);
      ++log[self];
    }
  };
  for (mpi::Rank rank = 0; rank < kRanks; ++rank) {
    int expect = 0;
    for (mpi::Rank src = 0; src < kRanks; ++src) expect += plan[src][rank];
    f.sched.spawn(sender(f, rank, plan));
    f.sched.spawn(receiver(f, rank, expect, received));
  }
  f.sched.run();
  for (mpi::Rank rank = 0; rank < kRanks; ++rank) {
    int expect = 0;
    for (mpi::Rank src = 0; src < kRanks; ++src) expect += plan[src][rank];
    EXPECT_EQ(received[rank], expect) << "rank " << rank;
    EXPECT_EQ(f.comm.unexpected_count(rank), 0u);
    EXPECT_EQ(f.comm.posted_count(rank), 0u);
  }
}

TEST(CommStressTest, InterleavedTagsNeverCross) {
  Fixture f(2);
  constexpr int kRounds = 60;
  auto sender = [](Fixture& fx) -> Process {
    for (int i = 0; i < kRounds; ++i) {
      co_await fx.comm.send(0, 1, /*tag=*/10, 32, i * 2);      // even stream
      co_await fx.comm.send(0, 1, /*tag=*/20, 32, i * 2 + 1);  // odd stream
    }
  };
  std::vector<int> evens, odds;
  auto receiver = [](Fixture& fx, std::vector<int>& even_log,
                     std::vector<int>& odd_log) -> Process {
    for (int i = 0; i < kRounds; ++i) {
      // Drain in the opposite order to force unexpected-queue traversal.
      const mpi::Message odd = co_await fx.comm.recv(1, 0, 20);
      odd_log.push_back(odd.as<int>());
      const mpi::Message even = co_await fx.comm.recv(1, 0, 10);
      even_log.push_back(even.as<int>());
    }
  };
  f.sched.spawn(sender(f));
  f.sched.spawn(receiver(f, evens, odds));
  f.sched.run();
  for (int i = 0; i < kRounds; ++i) {
    EXPECT_EQ(evens[static_cast<std::size_t>(i)], i * 2);
    EXPECT_EQ(odds[static_cast<std::size_t>(i)], i * 2 + 1);
  }
}

TEST(CommStressTest, RepeatedBarriersStayDeterministic) {
  Fixture a(5), b(5);
  auto run_one = [](Fixture& fx) {
    auto party = [](Fixture& f2, mpi::Rank rank) -> Process {
      for (int round = 0; round < 20; ++round) {
        co_await f2.sched.delay((rank + 1) * 37);
        co_await f2.comm.barrier();
      }
    };
    for (mpi::Rank rank = 0; rank < 5; ++rank)
      fx.sched.spawn(party(fx, rank));
    fx.sched.run();
    return fx.sched.now();
  };
  EXPECT_EQ(run_one(a), run_one(b));
}

}  // namespace
