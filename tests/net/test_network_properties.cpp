#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"

/// Property tests for the network model: analytic timing, conservation of
/// counted traffic, and FIFO fairness under load.

namespace {

using namespace s3asim;
using sim::Process;
using sim::Scheduler;
using sim::Time;

class TransferTimingTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double, double>> {};

TEST_P(TransferTimingTest, MatchesAnalyticFormula) {
  const auto [bytes, bandwidth, latency_us] = GetParam();
  net::LinkParams params;
  params.latency = sim::microseconds(latency_us);
  params.bandwidth_bps = bandwidth;
  params.per_message_overhead = 0;

  Scheduler sched;
  net::Network network(sched, 2, params);
  Time done = -1;
  auto prog = [](Scheduler& s, net::Network& n, std::uint64_t b,
                 Time& out) -> Process {
    co_await n.transfer(0, 1, b);
    out = s.now();
  };
  sched.spawn(prog(sched, network, bytes, done));
  sched.run();

  const Time expected = 2 * sim::transfer_time(bytes, bandwidth) +
                        sim::microseconds(latency_us);
  EXPECT_EQ(done, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TransferTimingTest,
    ::testing::Combine(::testing::Values(0ull, 1ull, 4096ull, 1ull << 20),
                       ::testing::Values(1e6, 230.0 * 1024 * 1024),
                       ::testing::Values(1.0, 7.5, 100.0)));

TEST(NetworkPropertyTest, CountersConserveTraffic) {
  // Random many-to-many traffic: Σ sent == Σ received, per-byte exact.
  Scheduler sched;
  net::Network network(sched, 8, net::LinkParams::myrinet2000());
  util::Xoshiro256 rng(99);
  std::uint64_t expected_bytes = 0;
  auto sender = [](Scheduler&, net::Network& n, net::EndpointId src,
                   net::EndpointId dst, std::uint64_t b) -> Process {
    co_await n.transfer(src, dst, b);
  };
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<net::EndpointId>(rng.uniform_u64(0, 7));
    auto dst = static_cast<net::EndpointId>(rng.uniform_u64(0, 7));
    if (dst == src) dst = (dst + 1) % 8;
    const std::uint64_t bytes = rng.uniform_u64(0, 100'000);
    expected_bytes += bytes;
    sched.spawn(sender(sched, network, src, dst, bytes));
  }
  sched.run();
  std::uint64_t sent = 0, received = 0, messages_in = 0, messages_out = 0;
  for (net::EndpointId ep = 0; ep < 8; ++ep) {
    sent += network.counters(ep).bytes_sent;
    received += network.counters(ep).bytes_received;
    messages_out += network.counters(ep).messages_sent;
    messages_in += network.counters(ep).messages_received;
  }
  EXPECT_EQ(sent, expected_bytes);
  EXPECT_EQ(received, expected_bytes);
  EXPECT_EQ(messages_out, 200u);
  EXPECT_EQ(messages_in, 200u);
}

TEST(NetworkPropertyTest, BusyTimeNeverExceedsMakespan) {
  Scheduler sched;
  net::Network network(sched, 4, net::LinkParams::slow_test_network());
  auto sender = [](Scheduler&, net::Network& n, net::EndpointId src,
                   std::uint64_t b) -> Process {
    co_await n.transfer(src, 3, b);
  };
  for (net::EndpointId src = 0; src < 3; ++src)
    sched.spawn(sender(sched, network, src, 500'000));
  sched.run();
  const Time makespan = sched.now();
  for (net::EndpointId ep = 0; ep < 4; ++ep) {
    EXPECT_LE(network.counters(ep).tx_busy, makespan);
    EXPECT_LE(network.counters(ep).rx_busy, makespan);
  }
  // The shared receiver must be busy for the serialized sum.
  EXPECT_EQ(network.counters(3).rx_busy,
            3 * sim::transfer_time(500'000, 1.0 * 1024 * 1024));
}

TEST(NetworkPropertyTest, ThroughputBoundedByReceiverBandwidth) {
  // N senders into one receiver: makespan >= total_bytes / bandwidth.
  Scheduler sched;
  net::LinkParams params;
  params.latency = 1000;
  params.bandwidth_bps = 1e8;
  params.per_message_overhead = 0;
  net::Network network(sched, 9, params);
  auto sender = [](Scheduler&, net::Network& n, net::EndpointId src) -> Process {
    for (int i = 0; i < 10; ++i) co_await n.transfer(src, 8, 100'000);
  };
  for (net::EndpointId src = 0; src < 8; ++src)
    sched.spawn(sender(sched, network, src));
  sched.run();
  const double total_bytes = 8.0 * 10 * 100'000;
  EXPECT_GE(sim::to_seconds(sched.now()), total_bytes / 1e8);
}

TEST(NetworkPropertyTest, OversubscribedFabricSerializesInjections) {
  // 4 disjoint sender/receiver pairs; a fabric of capacity 1 must serialize
  // the injections, a non-blocking fabric must not.
  auto run_with_fabric = [](std::uint32_t capacity) {
    net::LinkParams params;
    params.latency = 10;
    params.bandwidth_bps = 1e6;  // 1000 B ⇒ 1 ms serialization
    params.per_message_overhead = 0;
    params.fabric_concurrent_transfers = capacity;
    Scheduler sched;
    net::Network network(sched, 8, params);
    auto sender = [](Scheduler&, net::Network& n, net::EndpointId src) -> Process {
      co_await n.transfer(src, src + 4, 1000);
    };
    for (net::EndpointId src = 0; src < 4; ++src)
      sched.spawn(sender(sched, network, src));
    sched.run();
    return sched.now();
  };
  const Time nonblocking = run_with_fabric(0);
  const Time oversubscribed = run_with_fabric(1);
  EXPECT_GE(oversubscribed, nonblocking + 3 * sim::transfer_time(1000, 1e6));
  const Time half = run_with_fabric(2);
  EXPECT_GT(half, nonblocking);
  EXPECT_LT(half, oversubscribed);
}

}  // namespace
