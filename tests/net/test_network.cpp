#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace {

using namespace s3asim;
using sim::Process;
using sim::Scheduler;
using sim::Time;

net::LinkParams simple_params() {
  net::LinkParams params;
  params.latency = 1000;              // 1 µs
  params.bandwidth_bps = 1e9;         // 1 GB/s ⇒ 1 ns per byte
  params.per_message_overhead = 0;
  return params;
}

Process do_transfer(Scheduler& sched, net::Network& network, net::EndpointId src,
                    net::EndpointId dst, std::uint64_t bytes, Time& done_at) {
  co_await network.transfer(src, dst, bytes);
  done_at = sched.now();
}

TEST(NetworkTest, SingleTransferTiming) {
  Scheduler sched;
  net::Network network(sched, 2, simple_params());
  Time done = -1;
  // 1000 bytes: tx 1000 ns + latency 1000 ns + rx 1000 ns.
  sched.spawn(do_transfer(sched, network, 0, 1, 1000, done));
  sched.run();
  EXPECT_EQ(done, 3000);
}

TEST(NetworkTest, ZeroByteTransferPaysLatencyOnly) {
  Scheduler sched;
  net::Network network(sched, 2, simple_params());
  Time done = -1;
  sched.spawn(do_transfer(sched, network, 0, 1, 0, done));
  sched.run();
  EXPECT_EQ(done, 1000);
}

TEST(NetworkTest, PerMessageOverheadCharged) {
  Scheduler sched;
  auto params = simple_params();
  params.per_message_overhead = 500;
  net::Network network(sched, 2, params);
  Time done = -1;
  // tx (500 + 1000) + latency 1000 + rx (500 + 1000)
  sched.spawn(do_transfer(sched, network, 0, 1, 1000, done));
  sched.run();
  EXPECT_EQ(done, 4000);
}

TEST(NetworkTest, SelfSendSkipsWire) {
  Scheduler sched;
  auto params = simple_params();
  params.per_message_overhead = 500;
  net::Network network(sched, 2, params);
  Time done = -1;
  sched.spawn(do_transfer(sched, network, 1, 1, 1 << 20, done));
  sched.run();
  EXPECT_EQ(done, 500);  // software overhead only
}

TEST(NetworkTest, ReceiverSerializesConcurrentSenders) {
  Scheduler sched;
  net::Network network(sched, 3, simple_params());
  std::vector<Time> done(2, -1);
  // Two senders, same receiver, same instant: RX must serialize the 1000-byte
  // ejections: first completes at 3000, second at 4000.
  sched.spawn(do_transfer(sched, network, 0, 2, 1000, done[0]));
  sched.spawn(do_transfer(sched, network, 1, 2, 1000, done[1]));
  sched.run();
  EXPECT_EQ(done[0], 3000);
  EXPECT_EQ(done[1], 4000);
}

TEST(NetworkTest, DistinctReceiversDoNotContend) {
  Scheduler sched;
  net::Network network(sched, 4, simple_params());
  std::vector<Time> done(2, -1);
  sched.spawn(do_transfer(sched, network, 0, 2, 1000, done[0]));
  sched.spawn(do_transfer(sched, network, 1, 3, 1000, done[1]));
  sched.run();
  EXPECT_EQ(done[0], 3000);
  EXPECT_EQ(done[1], 3000);
}

TEST(NetworkTest, SenderSerializesItsOwnMessages) {
  Scheduler sched;
  net::Network network(sched, 3, simple_params());
  std::vector<Time> done(2, -1);
  sched.spawn(do_transfer(sched, network, 0, 1, 1000, done[0]));
  sched.spawn(do_transfer(sched, network, 0, 2, 1000, done[1]));
  sched.run();
  EXPECT_EQ(done[0], 3000);
  // second message leaves the TX path only after the first (at 1000).
  EXPECT_EQ(done[1], 4000);
}

TEST(NetworkTest, CountersTrackTraffic) {
  Scheduler sched;
  net::Network network(sched, 2, simple_params());
  Time done = -1;
  sched.spawn(do_transfer(sched, network, 0, 1, 1234, done));
  sched.run();
  EXPECT_EQ(network.counters(0).messages_sent, 1u);
  EXPECT_EQ(network.counters(0).bytes_sent, 1234u);
  EXPECT_EQ(network.counters(1).messages_received, 1u);
  EXPECT_EQ(network.counters(1).bytes_received, 1234u);
  EXPECT_EQ(network.counters(1).rx_busy, 1234);
}

TEST(NetworkTest, InvalidEndpointRejected) {
  Scheduler sched;
  net::Network network(sched, 2, simple_params());
  Time done = -1;
  sched.spawn(do_transfer(sched, network, 0, 5, 10, done));
  EXPECT_THROW(sched.run(), std::invalid_argument);
}

TEST(NetworkTest, ManySendersAggregateThroughputBounded) {
  Scheduler sched;
  net::Network network(sched, 17, simple_params());
  std::vector<Time> done(16, -1);
  // 16 senders × 1000 B into endpoint 16: completion of the last is bounded
  // below by 16 × 1000 ns of RX serialization.
  for (std::uint32_t i = 0; i < 16; ++i)
    sched.spawn(do_transfer(sched, network, i, 16, 1000, done[i]));
  sched.run();
  Time last = 0;
  for (const Time t : done) last = std::max(last, t);
  EXPECT_GE(last, 16 * 1000);
  EXPECT_LE(last, 16 * 1000 + 2000 + 1000);
}

}  // namespace
