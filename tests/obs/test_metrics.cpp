#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using s3asim::obs::Counter;
using s3asim::obs::Gauge;
using s3asim::obs::Histogram;
using s3asim::obs::Registry;
using s3asim::obs::Snapshot;
using s3asim::util::JsonValue;
using s3asim::util::parse_json;

TEST(CounterTest, AddValueReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  gauge.set(2.5);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(50), 0.0);
}

TEST(HistogramTest, ExactStatsAreExact) {
  Histogram histogram;
  histogram.observe(1.0);
  histogram.observe(4.0);
  histogram.observe(16.0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 21.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 16.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 7.0);
}

TEST(HistogramTest, PercentilesAreMonotoneAndClamped) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.observe(static_cast<double>(i));
  const double p50 = histogram.percentile(50);
  const double p95 = histogram.percentile(95);
  const double p99 = histogram.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log2 buckets give at worst a 2x bracket around the true quantile.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 500.0);
  // Clamped to observed extremes, never extrapolated past max.
  EXPECT_LE(p99, 1000.0);
  // p0 lands in the first occupied bucket [1, 2); p100 clamps to max.
  EXPECT_GE(histogram.percentile(0), 1.0);
  EXPECT_LE(histogram.percentile(0), 2.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(100), 1000.0);
}

TEST(HistogramTest, SingleSampleAllPercentilesEqual) {
  Histogram histogram;
  histogram.observe(3.25e-6);
  EXPECT_DOUBLE_EQ(histogram.percentile(50), 3.25e-6);
  EXPECT_DOUBLE_EQ(histogram.percentile(99), 3.25e-6);
}

TEST(HistogramTest, TinyAndHugeValuesStayFinite) {
  Histogram histogram;
  histogram.observe(1e-13);  // nanosecond-scale seconds
  histogram.observe(1e13);   // tens-of-TB byte counts
  histogram.observe(0.0);    // zero lands in the bottom bucket
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_TRUE(std::isfinite(histogram.percentile(50)));
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 1e13);
}

TEST(HistogramTest, MergeMatchesCombinedStream) {
  Histogram left;
  Histogram right;
  Histogram combined;
  for (int i = 1; i <= 100; ++i) {
    const double value = static_cast<double>(i) * 0.125;
    (i % 2 == 0 ? left : right).observe(value);
    combined.observe(value);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_DOUBLE_EQ(left.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
  EXPECT_DOUBLE_EQ(left.percentile(50), combined.percentile(50));
  EXPECT_DOUBLE_EQ(left.percentile(99), combined.percentile(99));
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram histogram;
  histogram.observe(7.0);
  Histogram empty;
  histogram.merge(empty);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_DOUBLE_EQ(histogram.min(), 7.0);
  empty.merge(histogram);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.max(), 7.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram histogram;
  histogram.observe(1.0);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.percentile(99), 0.0);
}

TEST(RegistryTest, LookupCreatesAndReferencesAreStable) {
  Registry registry;
  Counter& counter = registry.counter("a.events");
  counter.add(3);
  // Creating many more metrics must not invalidate the first reference.
  for (int i = 0; i < 100; ++i)
    registry.counter("churn." + std::to_string(i)).add(1);
  counter.add(1);
  EXPECT_EQ(registry.counter("a.events").value(), 4u);
}

TEST(RegistryTest, SnapshotIsSortedAndComplete) {
  Registry registry;
  registry.counter("z.count").add(1);
  registry.counter("a.count").add(2);
  registry.gauge("m.level").set(0.5);
  registry.histogram("h.lat").observe(1.0);
  const Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.count");
  EXPECT_EQ(snapshot.counters[1].first, "z.count");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count, 1u);
  const std::vector<std::string> names = snapshot.names();
  EXPECT_EQ(names, (std::vector<std::string>{"a.count", "h.lat", "m.level",
                                             "z.count"}));
}

TEST(RegistryTest, MergeAddsCountersGaugesAndHistograms) {
  Registry primary;
  primary.counter("events").add(2);
  primary.gauge("busy").add(1.5);
  primary.histogram("lat").observe(1.0);
  Registry other;
  other.counter("events").add(3);
  other.counter("only_other").add(7);
  other.gauge("busy").add(0.5);
  other.histogram("lat").observe(2.0);
  primary.merge(other);
  EXPECT_EQ(primary.counter("events").value(), 5u);
  EXPECT_EQ(primary.counter("only_other").value(), 7u);
  EXPECT_DOUBLE_EQ(primary.gauge("busy").value(), 2.0);
  EXPECT_EQ(primary.histogram("lat").count(), 2u);
}

TEST(RegistryTest, ResetKeepsCatalog) {
  Registry registry;
  registry.counter("events").add(9);
  registry.histogram("lat").observe(4.0);
  registry.reset();
  const Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second, 0u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count, 0u);
}

TEST(RegistryTest, JsonRoundTrips) {
  Registry registry;
  registry.counter("pfs.write.requests").add(10);
  registry.gauge("pfs.busy_seconds").set(1.25);
  registry.histogram("pfs.write.service_seconds").observe(0.004);
  const JsonValue root = parse_json(registry.to_json());
  EXPECT_DOUBLE_EQ(root.at("counters").at("pfs.write.requests").as_number(),
                   10.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("pfs.busy_seconds").as_number(), 1.25);
  const JsonValue& histogram =
      root.at("histograms").at("pfs.write.service_seconds");
  EXPECT_DOUBLE_EQ(histogram.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.at("p99").as_number(), 0.004);
}

}  // namespace
