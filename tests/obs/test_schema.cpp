#include "obs/schema.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace {

using s3asim::obs::kMetricsSchemaName;
using s3asim::obs::Registry;
using s3asim::obs::validate_chrome_trace;
using s3asim::obs::validate_metrics_manifest;
using s3asim::util::JsonValue;
using s3asim::util::JsonWriter;
using s3asim::util::parse_json;

TEST(ChromeTraceSchemaTest, MinimalValidDocument) {
  const JsonValue root = parse_json(R"({
    "displayTimeUnit": "ms",
    "traceEvents": [
      {"ph":"M","name":"process_name","pid":1,"tid":0,"ts":0,
       "cat":"__metadata","args":{"name":"MPI ranks"}},
      {"ph":"X","name":"Compute","pid":1,"tid":0,"ts":0,"dur":12.5},
      {"ph":"i","name":"worker died","pid":1,"tid":3,"ts":5,"s":"t"},
      {"ph":"s","name":"msg","pid":1,"tid":0,"ts":1,"id":"0"},
      {"ph":"f","name":"msg","pid":1,"tid":1,"ts":2,"id":"0","bp":"e"}
    ]})");
  EXPECT_TRUE(validate_chrome_trace(root).empty());
}

TEST(ChromeTraceSchemaTest, RejectsNonObjectAndMissingEvents) {
  EXPECT_FALSE(validate_chrome_trace(parse_json("[]")).empty());
  EXPECT_FALSE(validate_chrome_trace(parse_json("{}")).empty());
  EXPECT_FALSE(
      validate_chrome_trace(parse_json(R"({"traceEvents":5})")).empty());
}

TEST(ChromeTraceSchemaTest, RejectsBadEvents) {
  // Missing dur on a slice.
  EXPECT_FALSE(validate_chrome_trace(parse_json(
                   R"({"traceEvents":[
                        {"ph":"X","name":"a","pid":1,"tid":0,"ts":0}]})"))
                   .empty());
  // Negative dur.
  EXPECT_FALSE(
      validate_chrome_trace(
          parse_json(R"({"traceEvents":[
               {"ph":"X","name":"a","pid":1,"tid":0,"ts":0,"dur":-1}]})"))
          .empty());
  // Flow event without id.
  EXPECT_FALSE(validate_chrome_trace(
                   parse_json(R"({"traceEvents":[
                        {"ph":"s","name":"a","pid":1,"tid":0,"ts":0}]})"))
                   .empty());
  // Unknown phase.
  EXPECT_FALSE(
      validate_chrome_trace(
          parse_json(R"({"traceEvents":[
               {"ph":"Q","name":"a","pid":1,"tid":0,"ts":0}]})"))
          .empty());
  // Non-object event.
  EXPECT_FALSE(
      validate_chrome_trace(parse_json(R"({"traceEvents":[7]})")).empty());
}

/// Builds a manifest document the way the CLI does: schema tag + run echo +
/// trace drop count + a real registry serialization.
std::string manifest_text(const Registry& registry) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(kMetricsSchemaName);
  json.key("run");
  json.begin_object();
  json.key("strategy");
  json.value("WW-List");
  json.end_object();
  json.key("trace");
  json.begin_object();
  json.key("intervals_dropped");
  json.value(std::uint64_t{0});
  json.end_object();
  json.key("metrics");
  registry.write_json(json);
  json.end_object();
  return json.str();
}

TEST(MetricsManifestSchemaTest, RegistrySerializationValidates) {
  Registry registry;
  registry.counter("mpi.messages").add(12);
  registry.gauge("pfs.busy_seconds").set(0.75);
  registry.histogram("mpi.message.bytes").observe(4096.0);
  const std::vector<std::string> errors =
      validate_metrics_manifest(parse_json(manifest_text(registry)));
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(MetricsManifestSchemaTest, EmptyRegistryStillValidates) {
  const Registry registry;
  EXPECT_TRUE(
      validate_metrics_manifest(parse_json(manifest_text(registry))).empty());
}

TEST(MetricsManifestSchemaTest, RejectsWrongSchemaTag) {
  EXPECT_FALSE(
      validate_metrics_manifest(
          parse_json(R"({"schema":"bogus-v0","run":{},
               "trace":{"intervals_dropped":0},
               "metrics":{"counters":{},"gauges":{},"histograms":{}}})"))
          .empty());
}

TEST(MetricsManifestSchemaTest, RejectsMissingSections) {
  EXPECT_FALSE(validate_metrics_manifest(parse_json("{}")).empty());
  EXPECT_FALSE(validate_metrics_manifest(parse_json("[]")).empty());
  // Missing trace.intervals_dropped.
  EXPECT_FALSE(
      validate_metrics_manifest(
          parse_json(std::string(R"({"schema":")") + kMetricsSchemaName +
                     R"(","run":{},"trace":{},
               "metrics":{"counters":{},"gauges":{},"histograms":{}}})"))
          .empty());
  // Missing histograms section.
  EXPECT_FALSE(
      validate_metrics_manifest(
          parse_json(std::string(R"({"schema":")") + kMetricsSchemaName +
                     R"(","run":{},"trace":{"intervals_dropped":0},
               "metrics":{"counters":{},"gauges":{}}})"))
          .empty());
}

TEST(MetricsManifestSchemaTest, RejectsMalformedHistogramEntry) {
  EXPECT_FALSE(
      validate_metrics_manifest(
          parse_json(std::string(R"({"schema":")") + kMetricsSchemaName +
                     R"(","run":{},"trace":{"intervals_dropped":0},
               "metrics":{"counters":{},"gauges":{},
                          "histograms":{"h":{"count":1}}}})"))
          .empty());
  EXPECT_FALSE(
      validate_metrics_manifest(
          parse_json(std::string(R"({"schema":")") + kMetricsSchemaName +
                     R"(","run":{},"trace":{"intervals_dropped":0},
               "metrics":{"counters":{"c":"nope"},"gauges":{},
                          "histograms":{}}})"))
          .empty());
}

}  // namespace
