#include "pfs/layout.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace {

using s3asim::pfs::Extent;
using s3asim::pfs::Layout;
using s3asim::pfs::ServerPiece;

TEST(LayoutTest, PaperDefaultIsSixteenServers64KiBStrips) {
  const auto layout = Layout::paper_default();
  EXPECT_EQ(layout.strip_size(), 65536u);
  EXPECT_EQ(layout.server_count(), 16u);
  EXPECT_EQ(layout.stripe_size(), 1048576u);  // "1-MByte stripe"
}

TEST(LayoutTest, ServerOfRoundRobin) {
  const Layout layout(100, 4);
  EXPECT_EQ(layout.server_of(0), 0u);
  EXPECT_EQ(layout.server_of(99), 0u);
  EXPECT_EQ(layout.server_of(100), 1u);
  EXPECT_EQ(layout.server_of(399), 3u);
  EXPECT_EQ(layout.server_of(400), 0u);  // wraps to next stripe
}

TEST(LayoutTest, ServerOffsetAccountsForStripes) {
  const Layout layout(100, 4);
  EXPECT_EQ(layout.server_offset_of(0), 0u);
  EXPECT_EQ(layout.server_offset_of(50), 50u);
  EXPECT_EQ(layout.server_offset_of(150), 50u);   // server 1, first strip
  EXPECT_EQ(layout.server_offset_of(400), 100u);  // server 0, second strip
  EXPECT_EQ(layout.server_offset_of(450), 150u);
}

TEST(LayoutTest, SmallExtentWithinOneStrip) {
  const Layout layout(100, 4);
  const auto pieces = layout.map_extent(Extent{120, 30});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], (ServerPiece{1, 20, 30}));
}

TEST(LayoutTest, ExtentSpanningTwoServers) {
  const Layout layout(100, 4);
  const auto pieces = layout.map_extent(Extent{80, 50});
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], (ServerPiece{0, 80, 20}));
  EXPECT_EQ(pieces[1], (ServerPiece{1, 0, 30}));
}

TEST(LayoutTest, FullStripeTouchesEveryServerOnce) {
  const Layout layout(100, 4);
  const auto pieces = layout.map_extent(Extent{0, 400});
  ASSERT_EQ(pieces.size(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(pieces[s].server, s);
    EXPECT_EQ(pieces[s].length, 100u);
  }
}

TEST(LayoutTest, MultiStripeExtentCoalescesPerServer) {
  // Two full stripes: strips (0,4), (1,5)... are adjacent in each server's
  // local stream, so per-server pieces coalesce into a single pair when
  // mapped via group_by_server.
  const Layout layout(100, 4);
  const auto grouped = layout.group_by_server({Extent{0, 800}});
  for (std::uint32_t s = 0; s < 4; ++s) {
    ASSERT_EQ(grouped[s].size(), 1u) << "server " << s;
    EXPECT_EQ(grouped[s][0].server_offset, 0u);
    EXPECT_EQ(grouped[s][0].length, 200u);
  }
}

TEST(LayoutTest, MapExtentPreservesTotalLength) {
  const Layout layout(64 * 1024, 16);
  const Extent extent{123'456, 10'000'000};
  std::uint64_t total = 0;
  for (const auto& piece : layout.map_extent(extent)) total += piece.length;
  EXPECT_EQ(total, extent.length);
}

TEST(LayoutTest, ZeroLengthExtentMapsToNothing) {
  const Layout layout(100, 4);
  EXPECT_TRUE(layout.map_extent(Extent{50, 0}).empty());
}

TEST(LayoutTest, GroupByServerMergesScatteredExtents) {
  const Layout layout(100, 2);
  // Three scattered extents all landing on server 0.
  const auto grouped = layout.group_by_server(
      {Extent{0, 10}, Extent{20, 10}, Extent{40, 10}});
  EXPECT_EQ(grouped[0].size(), 3u);
  EXPECT_TRUE(grouped[1].empty());
}

TEST(LayoutTest, GroupByServerCoalescesTouchingExtents) {
  const Layout layout(100, 2);
  const auto grouped = layout.group_by_server({Extent{0, 10}, Extent{10, 10}});
  ASSERT_EQ(grouped[0].size(), 1u);
  EXPECT_EQ(grouped[0][0].length, 20u);
}

TEST(LayoutTest, SingleServerLayoutKeepsEverythingLocal) {
  const Layout layout(64, 1);
  const auto grouped = layout.group_by_server({Extent{0, 1000}});
  ASSERT_EQ(grouped.size(), 1u);
  ASSERT_EQ(grouped[0].size(), 1u);
  EXPECT_EQ(grouped[0][0].length, 1000u);
}

TEST(LayoutTest, RejectsDegenerateParameters) {
  EXPECT_THROW(Layout(0, 4), std::invalid_argument);
  EXPECT_THROW(Layout(64, 0), std::invalid_argument);
}

class LayoutPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(LayoutPropertyTest, DecompositionIsExactAndDisjoint) {
  const auto [strip, servers] = GetParam();
  const Layout layout(strip, servers);
  // A batch of adjacent extents must decompose into pieces whose per-server
  // lengths sum to the total and which never collide.
  std::vector<Extent> extents;
  std::uint64_t offset = 13;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t length = 7 + static_cast<std::uint64_t>(i) * 31 % 900;
    extents.push_back(Extent{offset, length});
    offset += length + (static_cast<std::uint64_t>(i) % 3) * strip;
  }
  std::uint64_t want_total = 0;
  for (const auto& extent : extents) want_total += extent.length;

  const auto grouped = layout.group_by_server(extents);
  std::uint64_t got_total = 0;
  for (std::uint32_t s = 0; s < grouped.size(); ++s) {
    std::uint64_t prev_end = 0;
    bool first = true;
    for (const auto& piece : grouped[s]) {
      EXPECT_EQ(piece.server, s);
      if (!first) {
        EXPECT_GT(piece.server_offset, prev_end);  // coalesced ⇒ strict gap
      }
      prev_end = piece.server_offset + piece.length;
      first = false;
      got_total += piece.length;
    }
  }
  EXPECT_EQ(got_total, want_total);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LayoutPropertyTest,
    ::testing::Values(std::tuple<std::uint64_t, std::uint32_t>{64, 1},
                      std::tuple<std::uint64_t, std::uint32_t>{64, 3},
                      std::tuple<std::uint64_t, std::uint32_t>{100, 4},
                      std::tuple<std::uint64_t, std::uint32_t>{65536, 16},
                      std::tuple<std::uint64_t, std::uint32_t>{1, 2},
                      std::tuple<std::uint64_t, std::uint32_t>{4096, 32}));

}  // namespace
