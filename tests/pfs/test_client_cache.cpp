/// Unit tests for the per-client write-back cache (pfs/cache.hpp
/// ClientCache): LRU eviction order, flush-behind dirty-run coalescing,
/// revocation invalidation, sync flush, close flush, and hit/miss
/// accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pfs/cache.hpp"

namespace {

using s3asim::pfs::CacheParams;
using s3asim::pfs::ClientCache;
using s3asim::pfs::Extent;
using s3asim::pfs::WritebackRun;

constexpr std::uint64_t kBlock = 64;

CacheParams params(std::uint64_t capacity_blocks) {
  CacheParams p;
  p.capacity_bytes = capacity_blocks * kBlock;
  p.block_bytes = kBlock;
  p.token_bytes = kBlock;
  return p;
}

Extent block_extent(std::uint64_t index) {
  return Extent{index * kBlock, kBlock};
}

TEST(ClientCacheTest, EvictsLeastRecentlyUsedBlock) {
  ClientCache cache(params(2));
  cache.absorb_write(0, block_extent(0));
  cache.absorb_write(0, block_extent(5));  // not adjacent: no dirty run
  cache.absorb_write(0, block_extent(9));
  ASSERT_TRUE(cache.needs_eviction());
  WritebackRun run;
  cache.evict_one(run);
  EXPECT_EQ(cache.lru_victim(),
            (std::pair<std::uint32_t, std::uint64_t>{0, 5}));
  ASSERT_EQ(run.extents.size(), 1u);
  EXPECT_EQ(run.extents[0].offset, 0u);  // block 0 was the LRU victim
  EXPECT_EQ(run.extents[0].length, kBlock);
  EXPECT_EQ(cache.resident_blocks(), 2u);
  EXPECT_FALSE(cache.needs_eviction());
}

TEST(ClientCacheTest, WriteTouchRefreshesRecency) {
  ClientCache cache(params(2));
  cache.absorb_write(0, block_extent(0));
  cache.absorb_write(0, block_extent(5));
  cache.absorb_write(0, block_extent(0));  // block 0 becomes most recent
  cache.absorb_write(0, block_extent(9));
  WritebackRun run;
  cache.evict_one(run);
  ASSERT_EQ(run.extents.size(), 1u);
  EXPECT_EQ(run.extents[0].offset, 5 * kBlock);  // block 5 is now the LRU
}

TEST(ClientCacheTest, ReadTouchRefreshesRecency) {
  ClientCache cache(params(2));
  cache.absorb_write(0, block_extent(0));
  cache.absorb_write(0, block_extent(5));
  std::vector<Extent> missing;
  cache.absorb_read(0, block_extent(0), missing);  // touch block 0
  EXPECT_TRUE(missing.empty());
  cache.absorb_write(0, block_extent(9));
  WritebackRun run;
  cache.evict_one(run);
  ASSERT_EQ(run.extents.size(), 1u);
  EXPECT_EQ(run.extents[0].offset, 5 * kBlock);
}

TEST(ClientCacheTest, FlushBehindWritesBackContiguousDirtyRun) {
  ClientCache cache(params(4));
  // Blocks 1,2,3 dirty and contiguous; block 7 dirty and isolated.  Make
  // block 1 the LRU victim.
  cache.absorb_write(0, block_extent(1));
  cache.absorb_write(0, block_extent(2));
  cache.absorb_write(0, block_extent(3));
  cache.absorb_write(0, block_extent(7));
  cache.absorb_write(0, block_extent(2));  // refresh 2 and 3 above 1
  cache.absorb_write(0, block_extent(3));
  cache.absorb_write(0, block_extent(9));  // overflow: victim is block 1
  ASSERT_TRUE(cache.needs_eviction());
  WritebackRun run;
  cache.evict_one(run);
  // The whole 1..3 dirty run is flushed as ONE coalesced extent; only the
  // victim (block 1) leaves the cache — 2 and 3 stay resident, clean.
  ASSERT_EQ(run.extents.size(), 1u);
  EXPECT_EQ(run.extents[0].offset, 1 * kBlock);
  EXPECT_EQ(run.extents[0].length, 3 * kBlock);
  EXPECT_EQ(run.bytes, 3 * kBlock);
  EXPECT_EQ(cache.resident_blocks(), 4u);  // blocks 2, 3, 7, 9
  // Refresh block 7 so the now-clean block 2 becomes the LRU; a forced
  // eviction of a clean block must carry no writeback.
  cache.absorb_write(0, block_extent(7));
  cache.absorb_write(0, block_extent(11));
  WritebackRun clean;
  cache.evict_one(clean);
  EXPECT_TRUE(clean.extents.empty());
  EXPECT_EQ(cache.stats().writebacks, 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().writeback_bytes, 3 * kBlock);
}

TEST(ClientCacheTest, SubBlockWritesCoalesceWithinAndAcrossBlocks) {
  ClientCache cache(params(8));
  cache.absorb_write(0, Extent{0, 16});
  cache.absorb_write(0, Extent{16, 16});  // adjacent: merges in-block
  cache.absorb_write(0, Extent{40, 24});  // gap at [32, 40)
  cache.absorb_write(0, Extent{64, 32});  // next block, contiguous with 40..64
  WritebackRun run;
  cache.flush_file(0, run);
  ASSERT_EQ(run.extents.size(), 2u);
  EXPECT_EQ(run.extents[0].offset, 0u);
  EXPECT_EQ(run.extents[0].length, 32u);
  EXPECT_EQ(run.extents[1].offset, 40u);
  EXPECT_EQ(run.extents[1].length, 56u);  // [40, 96) across the boundary
  EXPECT_EQ(run.bytes, 88u);
  // Everything is clean now; a second flush carries nothing.
  WritebackRun again;
  cache.flush_file(0, again);
  EXPECT_TRUE(again.extents.empty());
  EXPECT_EQ(cache.resident_blocks(), 2u);  // sync keeps residency
}

TEST(ClientCacheTest, InvalidateFlushesDirtyOverlapAndDropsCoveredBlocks) {
  ClientCache cache(params(8));
  cache.absorb_write(0, Extent{0, 3 * kBlock});  // blocks 0..2 dirty
  WritebackRun run;
  cache.invalidate(0, kBlock, 2 * kBlock, run);  // revoke exactly block 1
  ASSERT_EQ(run.extents.size(), 1u);
  EXPECT_EQ(run.extents[0].offset, kBlock);
  EXPECT_EQ(run.extents[0].length, kBlock);
  EXPECT_EQ(cache.resident_blocks(), 2u);  // block 1 dropped
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // Blocks 0 and 2 are still dirty.
  WritebackRun rest;
  cache.flush_file(0, rest);
  ASSERT_EQ(rest.extents.size(), 2u);
  EXPECT_EQ(rest.extents[0].offset, 0u);
  EXPECT_EQ(rest.extents[1].offset, 2 * kBlock);
}

TEST(ClientCacheTest, InvalidateCleanRangeWritesNothing) {
  ClientCache cache(params(4));
  std::vector<Extent> missing;
  cache.absorb_read(0, block_extent(0), missing);  // clean resident block
  WritebackRun run;
  cache.invalidate(0, 0, kBlock, run);
  EXPECT_TRUE(run.extents.empty());
  EXPECT_EQ(cache.resident_blocks(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(ClientCacheTest, CloseFlushesEverythingPerFile) {
  ClientCache cache(params(8));
  cache.absorb_write(0, block_extent(0));
  cache.absorb_write(0, block_extent(1));
  cache.absorb_write(2, block_extent(4));
  std::vector<WritebackRun> runs;
  cache.close_all(runs);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].file, 0u);
  ASSERT_EQ(runs[0].extents.size(), 1u);  // blocks 0+1 coalesced
  EXPECT_EQ(runs[0].extents[0].length, 2 * kBlock);
  EXPECT_EQ(runs[1].file, 2u);
  EXPECT_EQ(runs[1].extents[0].offset, 4 * kBlock);
  EXPECT_EQ(cache.resident_blocks(), 0u);
  EXPECT_EQ(cache.stats().close_writebacks, 3u);  // three dirty blocks
  EXPECT_EQ(cache.stats().evictions, 0u);  // close is not an eviction
}

TEST(ClientCacheTest, HitAndMissAccounting) {
  ClientCache cache(params(8));
  cache.absorb_write(0, Extent{0, 2 * kBlock});  // two block misses
  EXPECT_EQ(cache.stats().write_misses, 2u);
  cache.absorb_write(0, Extent{16, 16});  // within block 0: hit
  EXPECT_EQ(cache.stats().write_hits, 1u);
  std::vector<Extent> missing;
  cache.absorb_read(0, Extent{0, kBlock}, missing);  // fully valid: hit
  EXPECT_TRUE(missing.empty());
  EXPECT_EQ(cache.stats().read_hits, 1u);
  cache.absorb_read(0, Extent{4 * kBlock, kBlock}, missing);  // cold: miss
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].offset, 4 * kBlock);
  EXPECT_EQ(cache.stats().read_misses, 1u);
  // The fetched range is now resident and clean: re-read hits.
  missing.clear();
  cache.absorb_read(0, Extent{4 * kBlock, kBlock}, missing);
  EXPECT_TRUE(missing.empty());
  EXPECT_EQ(cache.stats().read_hits, 2u);
}

TEST(ClientCacheTest, PartialReadReturnsOnlyMissingPieces) {
  ClientCache cache(params(8));
  cache.absorb_write(0, Extent{16, 16});  // [16, 32) valid in block 0
  std::vector<Extent> missing;
  cache.absorb_read(0, Extent{0, kBlock}, missing);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].offset, 0u);
  EXPECT_EQ(missing[0].length, 16u);
  EXPECT_EQ(missing[1].offset, 32u);
  EXPECT_EQ(missing[1].length, 32u);
  EXPECT_EQ(cache.stats().read_misses, 1u);  // block partially missing
}

}  // namespace
