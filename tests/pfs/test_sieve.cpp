/// Data-sieving tests (pfs/sieve.hpp + the sieved Pfs client paths): the
/// window planner is checked against a per-byte brute-force reference over
/// randomized extent lists, and the simulated read/write paths are checked
/// for amplification accounting, read-modify-write hole protection, and
/// file-image equivalence with list I/O.

#include "pfs/sieve.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pfs/pfs.hpp"
#include "util/rng.hpp"

namespace {

using namespace s3asim;
using pfs::Extent;
using pfs::Pfs;
using pfs::PfsParams;
using pfs::SievePlan;
using pfs::SieveWindow;
using sim::Process;
using sim::Scheduler;

// ---- planner: brute-force reference ---------------------------------------

/// The per-byte reference: expand the extents into the sorted set of useful
/// bytes and replay the greedy rule one byte at a time — a window opens at
/// the first uncovered useful byte and takes every useful byte within
/// `buffer` of its start.
std::vector<SieveWindow> brute_force_windows(std::span<const Extent> extents,
                                             std::uint64_t buffer) {
  std::vector<std::uint64_t> bytes;
  for (const Extent& extent : extents)
    for (std::uint64_t b = 0; b < extent.length; ++b)
      bytes.push_back(extent.offset + b);
  std::sort(bytes.begin(), bytes.end());
  bytes.erase(std::unique(bytes.begin(), bytes.end()), bytes.end());

  std::vector<SieveWindow> windows;
  std::size_t i = 0;
  while (i < bytes.size()) {
    const std::uint64_t start = bytes[i];
    std::size_t j = i;
    while (j < bytes.size() && bytes[j] < start + buffer) ++j;
    SieveWindow window;
    window.offset = start;
    window.length = bytes[j - 1] + 1 - start;
    window.useful_bytes = j - i;
    window.hole_bytes = window.length - window.useful_bytes;
    for (std::size_t k = i + 1; k < j; ++k)
      if (bytes[k] != bytes[k - 1] + 1) ++window.holes;
    windows.push_back(window);
    i = j;
  }
  return windows;
}

void expect_plan_matches(std::span<const Extent> extents,
                         std::uint64_t buffer) {
  const SievePlan plan = pfs::plan_sieve(extents, buffer);
  const std::vector<SieveWindow> expected =
      brute_force_windows(extents, buffer);
  ASSERT_EQ(plan.windows.size(), expected.size()) << "buffer " << buffer;
  std::uint64_t useful = 0;
  std::uint64_t transferred = 0;
  std::uint64_t holes = 0;
  for (std::size_t w = 0; w < expected.size(); ++w) {
    SCOPED_TRACE("window " + std::to_string(w) + " buffer " +
                 std::to_string(buffer));
    EXPECT_EQ(plan.windows[w].offset, expected[w].offset);
    EXPECT_EQ(plan.windows[w].length, expected[w].length);
    EXPECT_EQ(plan.windows[w].useful_bytes, expected[w].useful_bytes);
    EXPECT_EQ(plan.windows[w].hole_bytes, expected[w].hole_bytes);
    EXPECT_EQ(plan.windows[w].holes, expected[w].holes);
    EXPECT_LE(plan.windows[w].length, buffer);
    // Disjoint and ascending; adjacency happens when a run longer than
    // the buffer is split across consecutive windows.
    if (w > 0)
      EXPECT_GE(plan.windows[w].offset, plan.windows[w - 1].end());
    useful += expected[w].useful_bytes;
    transferred += expected[w].length;
    holes += expected[w].hole_bytes;
  }
  EXPECT_EQ(plan.useful_bytes, useful);
  EXPECT_EQ(plan.transferred_bytes, transferred);
  EXPECT_EQ(plan.hole_bytes, holes);
  EXPECT_EQ(plan.amplified_bytes(), transferred - useful);
}

TEST(SievePlanTest, MatchesPerByteBruteForceOnRandomExtentLists) {
  util::Xoshiro256 rng(20060627);
  const std::uint64_t buffers[] = {1, 7, 64, 300, 4096};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Extent> extents;
    const std::size_t n = rng() % 12;
    for (std::size_t e = 0; e < n; ++e)
      extents.push_back({rng() % 2000, rng() % 120});  // empties included
    expect_plan_matches(extents, buffers[trial % std::size(buffers)]);
  }
}

TEST(SievePlanTest, CoalesceSortsMergesAndDropsEmpties) {
  const Extent input[] = {{500, 100}, {0, 50}, {40, 20}, {700, 0}, {560, 60}};
  const std::vector<Extent> merged = pfs::coalesce_extents(input);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].offset, 0u);
  EXPECT_EQ(merged[0].length, 60u);   // {0,50} + adjacent {40,20}
  EXPECT_EQ(merged[1].offset, 500u);
  EXPECT_EQ(merged[1].length, 120u);  // {500,100} + adjacent {560,60}
}

TEST(SievePlanTest, RunLongerThanBufferSplitsWithoutHoles) {
  const Extent one[] = {{100, 1000}};
  const SievePlan plan = pfs::plan_sieve(one, 256);
  ASSERT_EQ(plan.windows.size(), 4u);  // ceil(1000 / 256)
  for (const SieveWindow& window : plan.windows) {
    EXPECT_LE(window.length, 256u);
    EXPECT_EQ(window.holes, 0u);
    EXPECT_EQ(window.hole_bytes, 0u);
  }
  EXPECT_EQ(plan.useful_bytes, 1000u);
  EXPECT_EQ(plan.amplified_bytes(), 0u);
}

TEST(SievePlanTest, EmptyListYieldsEmptyPlan) {
  const SievePlan plan = pfs::plan_sieve({}, 4096);
  EXPECT_TRUE(plan.windows.empty());
  EXPECT_EQ(plan.useful_bytes, 0u);
  EXPECT_EQ(plan.transferred_bytes, 0u);
}

TEST(SievePlanTest, ZeroBufferIsRejected) {
  const Extent one[] = {{0, 10}};
  EXPECT_THROW((void)pfs::plan_sieve(one, 0), std::invalid_argument);
}

// ---- simulated client paths ------------------------------------------------

PfsParams sieve_params(std::uint32_t servers = 4, std::uint64_t strip = 1024) {
  PfsParams params;
  params.layout = pfs::Layout(strip, servers);
  params.disk = pfs::DiskModel::test_model();
  return params;
}

net::LinkParams fast_net() {
  net::LinkParams params;
  params.latency = 10;
  params.bandwidth_bps = 1e12;
  params.per_message_overhead = 0;
  return params;
}

struct Fixture {
  Scheduler sched;
  net::Network network;
  Pfs fs;
  explicit Fixture(PfsParams params = sieve_params())
      : network(sched, 2 + params.layout.server_count(), fast_net()),
        fs(sched, network, 2, params) {}
  ~Fixture() {
    fs.shutdown();
    sched.run();
  }

  [[nodiscard]] std::uint64_t total_server_read_bytes() const {
    std::uint64_t bytes = 0;
    for (std::uint32_t s = 0; s < fs.layout().server_count(); ++s)
      bytes += fs.server_stats(s).read_bytes;
    return bytes;
  }
  [[nodiscard]] std::uint64_t total_server_write_bytes() const {
    std::uint64_t bytes = 0;
    for (std::uint32_t s = 0; s < fs.layout().server_count(); ++s)
      bytes += fs.server_stats(s).bytes;
    return bytes;
  }
};

TEST(PfsSieveTest, SievedReadTransfersHolesButCountsOnlyUsefulBytes) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "db");
    const Extent extents[] = {{0, 100}, {200, 100}};
    co_await fx.fs.read_sieved(file, 0, extents, /*buffer_bytes=*/4096);
    EXPECT_EQ(fx.fs.bytes_read(file), 200u);  // the caller's view
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  // One window [0, 300): the 100-byte hole travels over the wire.
  EXPECT_EQ(f.total_server_read_bytes(), 300u);
  const pfs::SieveStats& stats = f.fs.sieve_stats();
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.read_useful_bytes, 200u);
  EXPECT_EQ(stats.read_transferred_bytes, 300u);
  EXPECT_EQ(stats.read_amplified_bytes(), 100u);
  EXPECT_EQ(stats.rmw_reads, 0u);
}

TEST(PfsSieveTest, SievedWriteProtectsHolesWithRmwPreRead) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    const Extent extents[] = {{0, 100}, {200, 100}};
    co_await fx.fs.write_sieved(file, 0, extents, /*buffer_bytes=*/4096,
                                /*writer=*/1, /*query=*/3);
    // Only the requested extents land in the image — the hole stays
    // unattributed even though its bytes were rewritten.
    EXPECT_EQ(fx.fs.image(file).covered_bytes(), 200u);
    EXPECT_EQ(fx.fs.image(file).history()[0].writer, 1u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  const pfs::SieveStats& stats = f.fs.sieve_stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.rmw_reads, 1u);
  EXPECT_EQ(stats.holes_protected, 1u);
  EXPECT_EQ(stats.write_useful_bytes, 200u);
  EXPECT_EQ(stats.write_transferred_bytes, 300u);
  // RMW = the whole window read back, then written: 300 bytes each way.
  EXPECT_EQ(f.total_server_read_bytes(), 300u);
  EXPECT_EQ(f.total_server_write_bytes(), 300u);
}

TEST(PfsSieveTest, DenseSievedWriteSkipsRmw) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    const Extent extents[] = {{0, 100}, {100, 200}};  // adjacent: no hole
    co_await fx.fs.write_sieved(file, 0, extents, /*buffer_bytes=*/4096);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  const pfs::SieveStats& stats = f.fs.sieve_stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.rmw_reads, 0u);
  EXPECT_EQ(stats.holes_protected, 0u);
  EXPECT_EQ(f.total_server_read_bytes(), 0u);
}

TEST(PfsSieveTest, SievedWriteImageMatchesListWrite) {
  const Extent extents[] = {{16, 48}, {128, 64}, {1000, 500}};
  auto run = [&](bool sieved) {
    Fixture f;
    auto prog = [&](Fixture& fx) -> Process {
      const auto file = co_await fx.fs.create_file(0, "out");
      std::vector<Extent> list(std::begin(extents), std::end(extents));
      if (sieved)
        co_await fx.fs.write_sieved(file, 0, list, /*buffer_bytes=*/256,
                                    /*writer=*/2, /*query=*/5);
      else
        co_await fx.fs.write_list(file, 0, list, /*writer=*/2, /*query=*/5);
      EXPECT_EQ(fx.fs.image(file).covered_bytes(), 48u + 64u + 500u);
      EXPECT_EQ(fx.fs.image(file).overlap_count(), 0u);
    };
    f.sched.spawn(prog(f));
    f.sched.run();
  };
  run(false);
  run(true);
}

TEST(PfsSieveTest, ReadListCountsPairsPerServer) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "db");
    const Extent extents[] = {{0, 100}, {200, 100}, {1024, 50}};
    co_await fx.fs.read_list(file, 0, extents);
    EXPECT_EQ(fx.fs.bytes_read(file), 250u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  // Strip 1024 over 4 servers: two extents on server 0, one on server 1 —
  // one list request each, pairs preserved.
  EXPECT_EQ(f.fs.server_stats(0).reads, 1u);
  EXPECT_EQ(f.fs.server_stats(0).read_pairs, 2u);
  EXPECT_EQ(f.fs.server_stats(1).reads, 1u);
  EXPECT_EQ(f.fs.server_stats(1).read_pairs, 1u);
  EXPECT_FALSE(f.fs.sieve_stats().used());
}

}  // namespace
