#include <gtest/gtest.h>

#include <vector>

#include "pfs/pfs.hpp"

namespace {

using namespace s3asim;
using pfs::Pfs;
using pfs::PfsParams;
using sim::Process;
using sim::Scheduler;
using sim::Time;

PfsParams read_params(std::uint32_t servers = 4, std::uint64_t strip = 1024) {
  PfsParams params;
  params.layout = pfs::Layout(strip, servers);
  params.disk = pfs::DiskModel::test_model();
  return params;
}

net::LinkParams fast_net() {
  net::LinkParams params;
  params.latency = 10;
  params.bandwidth_bps = 1e12;
  params.per_message_overhead = 0;
  return params;
}

struct Fixture {
  Scheduler sched;
  net::Network network;
  Pfs fs;
  explicit Fixture(PfsParams params = read_params())
      : network(sched, 2 + params.layout.server_count(), fast_net()),
        fs(sched, network, 2, params) {}
  ~Fixture() {
    fs.shutdown();
    sched.run();
  }
};

TEST(PfsReadTest, ReadFansOutOverServers) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "db");
    co_await fx.fs.read_contiguous(file, 0, 0, 4096);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(f.fs.server_stats(s).reads, 1u) << "server " << s;
    EXPECT_EQ(f.fs.server_stats(s).read_bytes, 1024u);
  }
}

TEST(PfsReadTest, ReadsDoNotDirtyServers) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "db");
    co_await fx.fs.read_contiguous(file, 0, 0, 4096);
    // Sync after a pure read must be the cheap no-op path everywhere.
    co_await fx.fs.sync(file, 0);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  // noop sync = 100 ns in the test model; flush sync = 10'000 ns.
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_LT(f.fs.server_stats(s).busy, 10'000);
}

TEST(PfsReadTest, BytesReadAccumulatePerFile) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto db = co_await fx.fs.create_file(0, "db");
    const auto other = co_await fx.fs.create_file(0, "other");
    co_await fx.fs.read_contiguous(db, 0, 0, 1000);
    co_await fx.fs.read_contiguous(db, 0, 5000, 2000);
    co_await fx.fs.read_contiguous(other, 0, 0, 42);
    EXPECT_EQ(fx.fs.bytes_read(db), 3000u);
    EXPECT_EQ(fx.fs.bytes_read(other), 42u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(PfsReadTest, ReadDoesNotTouchFileImage) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "db");
    co_await fx.fs.read_contiguous(file, 0, 0, 4096);
    EXPECT_EQ(fx.fs.image(file).covered_bytes(), 0u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(PfsReadTest, LargeReadSlowerThanSmall) {
  Fixture f;
  std::vector<Time> elapsed(2, 0);
  auto prog = [](Fixture& fx, std::vector<Time>& out) -> Process {
    const auto file = co_await fx.fs.create_file(0, "db");
    Time start = fx.sched.now();
    co_await fx.fs.read_contiguous(file, 0, 0, 1024);
    out[0] = fx.sched.now() - start;
    start = fx.sched.now();
    co_await fx.fs.read_contiguous(file, 0, 0, 1024 * 1024);
    out[1] = fx.sched.now() - start;
  };
  f.sched.spawn(prog(f, elapsed));
  f.sched.run();
  EXPECT_GT(elapsed[1], elapsed[0]);
}

TEST(DiskModelReadTest, ReadKnobsDefaultToWriteCost) {
  // Zero-valued read knobs inherit the write-side model, so a simulator
  // configured the historical way charges reads exactly like writes.
  const auto disk = pfs::DiskModel::test_model();
  EXPECT_EQ(disk.read_service_time(1, 4096), disk.write_service_time(1, 4096));
  EXPECT_EQ(disk.read_service_time(7, 0), disk.write_service_time(7, 0));
}

TEST(DiskModelReadTest, ReadKnobsOverrideIndependently) {
  auto disk = pfs::DiskModel::test_model();
  disk.read_per_request = 10;      // vs 1'000 write-side
  disk.read_per_pair = 1;          // vs 100 write-side
  disk.read_bandwidth_bps = 2e9;   // vs 1e9 write-side
  EXPECT_EQ(disk.read_service_time(2, 2000), 10 + 2 * 1 + 1000);
  // Write-side model is untouched.
  EXPECT_EQ(disk.write_service_time(2, 2000), 1000 + 2 * 100 + 2000);
}

TEST(PfsReadTest, CheapReadKnobShortensServerBusyTime) {
  PfsParams slow = read_params();
  PfsParams fast = read_params();
  fast.disk.read_per_request = 1;
  fast.disk.read_per_pair = 1;
  fast.disk.read_bandwidth_bps = 1e12;
  Time slow_busy = 0;
  Time fast_busy = 0;
  for (auto* out : {&slow_busy, &fast_busy}) {
    Fixture f(out == &slow_busy ? slow : fast);
    auto prog = [](Fixture& fx) -> Process {
      const auto file = co_await fx.fs.create_file(0, "db");
      co_await fx.fs.read_contiguous(file, 0, 0, 4096);
    };
    f.sched.spawn(prog(f));
    f.sched.run();
    for (std::uint32_t s = 0; s < 4; ++s) *out += f.fs.server_stats(s).busy;
  }
  EXPECT_LT(fast_busy, slow_busy);
}

TEST(PfsReadTest, ZeroLengthReadIsHarmless) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "db");
    co_await fx.fs.read_contiguous(file, 0, 100, 0);
    EXPECT_EQ(fx.fs.bytes_read(file), 0u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

}  // namespace
