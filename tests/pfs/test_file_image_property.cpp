// Property tests: the flat interval-vector FileImage against a brute-force
// byte-bitmap reference, under random overlapping/adjacent write streams.
// The bitmap is the obvious-by-inspection model — one byte per file byte,
// counting touches — so agreement on coverage, gaps, overlap zero-ness and
// covers_exactly across thousands of randomized writes pins the batched
// merge logic (including flush-threshold crossings).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "pfs/file_image.hpp"

namespace {

using s3asim::pfs::Extent;
using s3asim::pfs::FileImage;

/// Brute-force reference: per-byte touch counts over a small file.
class ByteBitmap {
 public:
  explicit ByteBitmap(std::uint64_t total) : touches_(total, 0) {}

  void record(std::uint64_t offset, std::uint64_t length) {
    if (length == 0) return;
    const auto first = touches_.begin() + static_cast<std::ptrdiff_t>(offset);
    const auto last = first + static_cast<std::ptrdiff_t>(length);
    any_overlap_ = any_overlap_ ||
                   std::any_of(first, last,
                               [](std::uint32_t c) { return c > 0; });
    for (std::uint64_t b = offset; b < offset + length; ++b) ++touches_[b];
  }

  [[nodiscard]] bool any_overlap() const { return any_overlap_; }

  [[nodiscard]] std::uint64_t covered_bytes() const {
    return static_cast<std::uint64_t>(
        std::count_if(touches_.begin(), touches_.end(),
                      [](std::uint32_t c) { return c > 0; }));
  }

  [[nodiscard]] std::vector<Extent> gaps(std::uint64_t total) const {
    std::vector<Extent> holes;
    std::uint64_t b = 0;
    while (b < total) {
      if (touches_[b] != 0) {
        ++b;
        continue;
      }
      const std::uint64_t start = b;
      while (b < total && touches_[b] == 0) ++b;
      holes.push_back(Extent{start, b - start});
    }
    return holes;
  }

  [[nodiscard]] bool covers_exactly(std::uint64_t total) const {
    return !any_overlap_ && covered_bytes() == total;
  }

 private:
  std::vector<std::uint32_t> touches_;
  bool any_overlap_ = false;
};

struct Shape {
  std::uint64_t file_bytes;
  std::uint64_t max_write;
  int writes;
  std::uint32_t seed;
};

void check_against_bitmap(const Shape& shape, FileImage& image) {
  ByteBitmap reference(shape.file_bytes);
  std::mt19937 rng(shape.seed);
  std::uniform_int_distribution<std::uint64_t> offset_dist(0, shape.file_bytes - 1);
  std::uniform_int_distribution<std::uint64_t> length_dist(0, shape.max_write);
  for (int i = 0; i < shape.writes; ++i) {
    const std::uint64_t offset = offset_dist(rng);
    const std::uint64_t length =
        std::min(length_dist(rng), shape.file_bytes - offset);
    image.record_write(offset, length);
    reference.record(offset, length);
  }
  // Overlap *zero-ness* is the contract (the exact count of a pile-up is
  // batch-order dependent); coverage and gaps must agree exactly.
  EXPECT_EQ(image.overlap_count() == 0, !reference.any_overlap());
  EXPECT_EQ(image.covered_bytes(), reference.covered_bytes());
  EXPECT_EQ(image.gaps(shape.file_bytes), reference.gaps(shape.file_bytes));
  EXPECT_EQ(image.covers_exactly(shape.file_bytes),
            reference.covers_exactly(shape.file_bytes));
}

TEST(FileImagePropertyTest, SparseRandomWritesMatchBitmap) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    FileImage image;
    check_against_bitmap(Shape{1 << 16, 512, 200, seed}, image);
  }
}

TEST(FileImagePropertyTest, DenseOverlappingWritesMatchBitmap) {
  for (std::uint32_t seed = 100; seed <= 104; ++seed) {
    SCOPED_TRACE(seed);
    FileImage image;
    check_against_bitmap(Shape{4096, 256, 500, seed}, image);
  }
}

TEST(FileImagePropertyTest, FlushThresholdCrossingMatchesBitmap) {
  // More writes than the staged-batch threshold (1024), so the run exercises
  // multiple sort+merge folds plus queries landing mid-batch.
  for (std::uint32_t seed = 7; seed <= 9; ++seed) {
    SCOPED_TRACE(seed);
    FileImage image(FileImage::HistoryMode::Full);
    check_against_bitmap(Shape{1 << 15, 64, 5000, seed}, image);
    // Zero-length draws are skipped, so the log holds exactly the recorded
    // (non-empty) writes even though that is fewer than the 5000 attempts.
    EXPECT_EQ(image.history().size(), image.write_count());
    EXPECT_GT(image.write_count(), FileImage::kHistoryCapacity);
  }
}

TEST(FileImagePropertyTest, DisjointTilingNeverReportsOverlap) {
  // Mutually exclusive interleaved extents in a random order — the paper's
  // worker-write invariant.  Exact cover, zero overlap, no gaps.
  std::mt19937 rng(42);
  constexpr std::uint64_t kPieces = 3000;  // crosses the flush threshold
  constexpr std::uint64_t kSize = 17;
  std::vector<std::uint64_t> order(kPieces);
  for (std::uint64_t i = 0; i < kPieces; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  FileImage image;
  for (const std::uint64_t piece : order)
    image.record_write(piece * kSize, kSize);
  EXPECT_EQ(image.overlap_count(), 0u);
  EXPECT_EQ(image.covered_bytes(), kPieces * kSize);
  EXPECT_TRUE(image.covers_exactly(kPieces * kSize));
  EXPECT_TRUE(image.gaps(kPieces * kSize).empty());
}

TEST(FileImagePropertyTest, BoundedHistoryRingKeepsRecentWrites) {
  FileImage image;  // default: bounded history
  for (std::uint64_t i = 0; i < FileImage::kHistoryCapacity; ++i)
    image.record_write(i * 10, 10, static_cast<std::uint32_t>(i));
  // Ring still intact: full log available.
  EXPECT_EQ(image.history().size(), FileImage::kHistoryCapacity);
  // One more write wraps the ring; the accessor now refuses.
  image.record_write(999999, 10);
  EXPECT_THROW((void)image.history(), std::invalid_argument);
  // Counters keep working regardless of the ring state.
  EXPECT_EQ(image.write_count(), FileImage::kHistoryCapacity + 1);
}

TEST(FileImagePropertyTest, FullHistoryModeKeepsEverything) {
  FileImage image(FileImage::HistoryMode::Full);
  const std::uint64_t writes = FileImage::kHistoryCapacity + 500;
  for (std::uint64_t i = 0; i < writes; ++i)
    image.record_write(i, 1, static_cast<std::uint32_t>(i % 64), i);
  ASSERT_EQ(image.history().size(), writes);
  EXPECT_EQ(image.history().front().query, 0u);
  EXPECT_EQ(image.history().back().query, writes - 1);
}

}  // namespace
