/// Property tests for the byte-range lease algebra (pfs/cache.hpp
/// TokenManager): overlap detection, range subtraction, and revocation are
/// checked against a brute-force per-byte reference that tracks, for every
/// byte, which client holds it in which mode.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "pfs/cache.hpp"

namespace {

using s3asim::pfs::FileHandle;
using s3asim::pfs::FileToken;
using s3asim::pfs::TokenManager;
using s3asim::pfs::TokenMode;

constexpr std::uint64_t kDomain = 256;  // bytes modeled by the reference

/// Per-byte ground truth: byte → (client → mode).  Read leases may share a
/// byte across clients; a write lease is exclusive.
class ByteReference {
 public:
  [[nodiscard]] bool covered(std::uint32_t client, TokenMode mode,
                             std::uint64_t begin, std::uint64_t end) const {
    for (std::uint64_t byte = begin; byte < end; ++byte) {
      const auto holders = bytes_.find(byte);
      if (holders == bytes_.end()) return false;
      const auto held = holders->second.find(client);
      if (held == holders->second.end()) return false;
      if (mode == TokenMode::Write && held->second != TokenMode::Write)
        return false;
    }
    return true;
  }

  /// Mirrors TokenManager::acquire: the client's coverage of [begin, end)
  /// becomes `mode`; conflicting foreign holders lose the range.  Returns
  /// each victim's revoked byte set.
  std::map<std::uint32_t, std::set<std::uint64_t>> acquire(
      std::uint32_t client, TokenMode mode, std::uint64_t begin,
      std::uint64_t end) {
    std::map<std::uint32_t, std::set<std::uint64_t>> revoked;
    for (std::uint64_t byte = begin; byte < end; ++byte) {
      auto& holders = bytes_[byte];
      for (auto it = holders.begin(); it != holders.end();) {
        if (it->first != client &&
            (it->second == TokenMode::Write || mode == TokenMode::Write)) {
          revoked[it->first].insert(byte);
          it = holders.erase(it);
        } else {
          ++it;
        }
      }
      holders[client] = mode;
    }
    return revoked;
  }

  void release_client(std::uint32_t client) {
    for (auto& [byte, holders] : bytes_) holders.erase(client);
  }

  [[nodiscard]] const std::map<std::uint64_t,
                               std::map<std::uint32_t, TokenMode>>&
  bytes() const {
    return bytes_;
  }

 private:
  std::map<std::uint64_t, std::map<std::uint32_t, TokenMode>> bytes_;
};

/// The byte set a revocation list covers, per victim.
std::map<std::uint32_t, std::set<std::uint64_t>> revocation_bytes(
    const std::vector<TokenManager::Revocation>& revocations) {
  std::map<std::uint32_t, std::set<std::uint64_t>> out;
  for (const TokenManager::Revocation& revocation : revocations)
    for (std::uint64_t byte = revocation.begin; byte < revocation.end; ++byte)
      out[revocation.client].insert(byte);
  return out;
}

/// One client's tokens must never overlap each other.
void expect_disjoint_per_client(const TokenManager& manager, FileHandle file) {
  std::map<std::uint32_t, std::set<std::uint64_t>> seen;
  for (const FileToken& token : manager.file_tokens(file)) {
    ASSERT_LT(token.begin, token.end);
    for (std::uint64_t byte = token.begin; byte < token.end; ++byte) {
      EXPECT_TRUE(seen[token.client].insert(byte).second)
          << "client " << token.client << " holds byte " << byte << " twice";
    }
  }
}

TEST(TokenManagerTest, GrantThenCovered) {
  TokenManager manager;
  EXPECT_FALSE(manager.covered(0, 1, TokenMode::Write, 0, 64));
  EXPECT_TRUE(manager.acquire(0, 1, TokenMode::Write, 0, 64).empty());
  EXPECT_TRUE(manager.covered(0, 1, TokenMode::Write, 0, 64));
  EXPECT_TRUE(manager.covered(0, 1, TokenMode::Write, 16, 32));
  // A write lease satisfies a read request, not vice versa.
  EXPECT_TRUE(manager.covered(0, 1, TokenMode::Read, 0, 64));
  EXPECT_TRUE(manager.acquire(0, 2, TokenMode::Read, 64, 128).empty());
  EXPECT_FALSE(manager.covered(0, 2, TokenMode::Write, 64, 128));
}

TEST(TokenManagerTest, AdjacentGrantsCoalesce) {
  TokenManager manager;
  (void)manager.acquire(0, 1, TokenMode::Write, 0, 64);
  (void)manager.acquire(0, 1, TokenMode::Write, 64, 128);
  EXPECT_TRUE(manager.covered(0, 1, TokenMode::Write, 0, 128));
  ASSERT_EQ(manager.file_tokens(0).size(), 1u);
  EXPECT_EQ(manager.file_tokens(0)[0].begin, 0u);
  EXPECT_EQ(manager.file_tokens(0)[0].end, 128u);
}

TEST(TokenManagerTest, ConflictingWriteRevokesAndSubtracts) {
  TokenManager manager;
  (void)manager.acquire(0, 1, TokenMode::Write, 0, 128);
  const auto revocations = manager.acquire(0, 2, TokenMode::Write, 32, 64);
  ASSERT_EQ(revocations.size(), 1u);
  EXPECT_EQ(revocations[0].client, 1u);
  EXPECT_EQ(revocations[0].begin, 32u);
  EXPECT_EQ(revocations[0].end, 64u);
  // Client 1 keeps the two remainders; the middle now belongs to client 2.
  EXPECT_TRUE(manager.covered(0, 1, TokenMode::Write, 0, 32));
  EXPECT_TRUE(manager.covered(0, 1, TokenMode::Write, 64, 128));
  EXPECT_FALSE(manager.covered(0, 1, TokenMode::Read, 32, 64));
  EXPECT_TRUE(manager.covered(0, 2, TokenMode::Write, 32, 64));
  EXPECT_EQ(manager.conflicts(), 1u);
  EXPECT_EQ(manager.revocations(), 1u);
  expect_disjoint_per_client(manager, 0);
}

TEST(TokenManagerTest, ReadersShareWritersDoNot) {
  TokenManager manager;
  (void)manager.acquire(0, 1, TokenMode::Read, 0, 100);
  EXPECT_TRUE(manager.acquire(0, 2, TokenMode::Read, 50, 150).empty());
  EXPECT_TRUE(manager.covered(0, 1, TokenMode::Read, 0, 100));
  EXPECT_TRUE(manager.covered(0, 2, TokenMode::Read, 50, 150));
  // A writer revokes both readers' overlap, merged per victim.
  const auto revocations = manager.acquire(0, 3, TokenMode::Write, 60, 90);
  ASSERT_EQ(revocations.size(), 2u);
  EXPECT_EQ(revocations[0].client, 1u);
  EXPECT_EQ(revocations[1].client, 2u);
  EXPECT_FALSE(manager.covered(0, 1, TokenMode::Read, 60, 90));
  EXPECT_FALSE(manager.covered(0, 2, TokenMode::Read, 60, 90));
}

TEST(TokenManagerTest, ReleaseClientDropsAllLeases) {
  TokenManager manager;
  (void)manager.acquire(0, 1, TokenMode::Write, 0, 64);
  (void)manager.acquire(1, 1, TokenMode::Read, 0, 32);
  (void)manager.acquire(0, 2, TokenMode::Read, 100, 200);
  manager.release_client(1);
  EXPECT_FALSE(manager.covered(0, 1, TokenMode::Read, 0, 64));
  EXPECT_FALSE(manager.covered(1, 1, TokenMode::Read, 0, 32));
  EXPECT_TRUE(manager.covered(0, 2, TokenMode::Read, 100, 200));
}

TEST(TokenManagerTest, RevocationsMergedPerVictimAndOrdered) {
  TokenManager manager;
  // Client 1 holds two adjacent leases (they coalesce), client 2 one more.
  (void)manager.acquire(0, 2, TokenMode::Write, 96, 128);
  (void)manager.acquire(0, 1, TokenMode::Write, 0, 32);
  (void)manager.acquire(0, 1, TokenMode::Write, 32, 64);
  const auto revocations = manager.acquire(0, 3, TokenMode::Write, 0, 128);
  ASSERT_EQ(revocations.size(), 2u);
  EXPECT_EQ(revocations[0].client, 1u);
  EXPECT_EQ(revocations[0].begin, 0u);
  EXPECT_EQ(revocations[0].end, 64u);
  EXPECT_EQ(revocations[1].client, 2u);
  EXPECT_EQ(revocations[1].begin, 96u);
  EXPECT_EQ(revocations[1].end, 128u);
}

TEST(TokenManagerTest, FilesAreIndependent) {
  TokenManager manager;
  (void)manager.acquire(0, 1, TokenMode::Write, 0, 64);
  EXPECT_TRUE(manager.acquire(1, 2, TokenMode::Write, 0, 64).empty());
  EXPECT_TRUE(manager.covered(0, 1, TokenMode::Write, 0, 64));
  EXPECT_TRUE(manager.covered(1, 2, TokenMode::Write, 0, 64));
}

/// The property test: random acquire/covered/release traffic from several
/// clients over a small byte domain, every step checked against the
/// per-byte reference.
TEST(TokenManagerPropertyTest, MatchesPerByteReference) {
  std::mt19937_64 rng(20060627);
  std::uniform_int_distribution<std::uint64_t> offset_dist(0, kDomain - 1);
  std::uniform_int_distribution<std::uint32_t> client_dist(1, 4);
  std::uniform_int_distribution<int> op_dist(0, 9);

  TokenManager manager;
  ByteReference reference;
  const FileHandle file = 0;

  for (int step = 0; step < 2000; ++step) {
    const std::uint32_t client = client_dist(rng);
    std::uint64_t begin = offset_dist(rng);
    std::uint64_t end = offset_dist(rng) + 1;
    if (begin > end) std::swap(begin, end);
    if (begin == end) end = begin + 1;
    const TokenMode mode =
        (op_dist(rng) < 5) ? TokenMode::Write : TokenMode::Read;
    const int op = op_dist(rng);

    if (op == 9) {
      manager.release_client(client);
      reference.release_client(client);
    } else if (op >= 6) {
      EXPECT_EQ(manager.covered(file, client, mode, begin, end),
                reference.covered(client, mode, begin, end))
          << "step " << step << " covered(" << client << ", [" << begin << ", "
          << end << "))";
    } else {
      const auto revocations =
          manager.acquire(file, client, mode, begin, end);
      const auto expected = reference.acquire(client, mode, begin, end);
      EXPECT_EQ(revocation_bytes(revocations), expected)
          << "step " << step << " acquire(" << client << ", [" << begin
          << ", " << end << "))";
      EXPECT_TRUE(manager.covered(file, client, mode, begin, end));
    }
  }

  expect_disjoint_per_client(manager, file);

  // Full-table audit: every byte's holders match the reference exactly.
  for (std::uint32_t client = 1; client <= 4; ++client) {
    for (std::uint64_t byte = 0; byte < kDomain; ++byte) {
      for (const TokenMode mode : {TokenMode::Read, TokenMode::Write}) {
        EXPECT_EQ(manager.covered(file, client, mode, byte, byte + 1),
                  reference.covered(client, mode, byte, byte + 1))
            << "client " << client << " byte " << byte;
      }
    }
  }
}

}  // namespace
