#include "pfs/file_image.hpp"

#include <gtest/gtest.h>

namespace {

using s3asim::pfs::Extent;
using s3asim::pfs::FileImage;

TEST(FileImageTest, EmptyImage) {
  FileImage image;
  EXPECT_EQ(image.bytes_written(), 0u);
  EXPECT_EQ(image.covered_bytes(), 0u);
  EXPECT_TRUE(image.covers_exactly(0));
  EXPECT_FALSE(image.covers_exactly(10));
}

TEST(FileImageTest, SingleWriteCoversItsRange) {
  FileImage image;
  image.record_write(0, 100);
  EXPECT_EQ(image.bytes_written(), 100u);
  EXPECT_EQ(image.covered_bytes(), 100u);
  EXPECT_TRUE(image.covers_exactly(100));
  EXPECT_EQ(image.overlap_count(), 0u);
}

TEST(FileImageTest, AdjacentWritesMergeWithoutOverlap) {
  FileImage image;
  image.record_write(0, 50);
  image.record_write(50, 50);
  EXPECT_EQ(image.overlap_count(), 0u);
  EXPECT_TRUE(image.covers_exactly(100));
}

TEST(FileImageTest, OutOfOrderWritesStillCover) {
  FileImage image;
  image.record_write(50, 50);
  image.record_write(0, 50);
  EXPECT_TRUE(image.covers_exactly(100));
}

TEST(FileImageTest, OverlapDetected) {
  FileImage image;
  image.record_write(0, 60);
  image.record_write(50, 50);
  EXPECT_GE(image.overlap_count(), 1u);
  EXPECT_FALSE(image.covers_exactly(100));
  EXPECT_EQ(image.covered_bytes(), 100u);
}

TEST(FileImageTest, ContainedOverlapDetected) {
  FileImage image;
  image.record_write(0, 100);
  image.record_write(20, 10);
  EXPECT_GE(image.overlap_count(), 1u);
}

TEST(FileImageTest, GapDetection) {
  FileImage image;
  image.record_write(0, 10);
  image.record_write(20, 10);
  const auto holes = image.gaps(40);
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0], (Extent{10, 10}));
  EXPECT_EQ(holes[1], (Extent{30, 10}));
}

TEST(FileImageTest, NoGapsWhenFullyCovered) {
  FileImage image;
  image.record_write(0, 40);
  EXPECT_TRUE(image.gaps(40).empty());
}

TEST(FileImageTest, LeadingGap) {
  FileImage image;
  image.record_write(10, 30);
  const auto holes = image.gaps(40);
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes[0], (Extent{0, 10}));
}

TEST(FileImageTest, ZeroLengthWriteIgnored) {
  FileImage image;
  image.record_write(5, 0);
  EXPECT_EQ(image.write_count(), 0u);
  EXPECT_EQ(image.covered_bytes(), 0u);
}

TEST(FileImageTest, HistoryKeepsProvenance) {
  FileImage image;
  image.record_write(0, 10, /*writer=*/3, /*query=*/7);
  ASSERT_EQ(image.history().size(), 1u);
  EXPECT_EQ(image.history()[0].writer, 3u);
  EXPECT_EQ(image.history()[0].query, 7u);
}

TEST(FileImageTest, ManyInterleavedWritersCoverExactly) {
  // Simulates the WW pattern: many writers, mutually exclusive interleaved
  // extents, arbitrary arrival order.
  FileImage image;
  constexpr std::uint64_t kPieces = 1000;
  constexpr std::uint64_t kSize = 37;
  for (std::uint64_t i = 0; i < kPieces; ++i) {
    const std::uint64_t piece = (i * 7919) % kPieces;  // permutation
    image.record_write(piece * kSize, kSize, static_cast<std::uint32_t>(piece % 8));
  }
  EXPECT_EQ(image.overlap_count(), 0u);
  EXPECT_TRUE(image.covers_exactly(kPieces * kSize));
}

TEST(FileImageTest, MergeAcrossManyIntervalsOnBigWrite) {
  FileImage image;
  for (std::uint64_t i = 0; i < 10; ++i) image.record_write(i * 20, 10);
  // One giant overlapping write spanning everything.
  image.record_write(0, 200);
  EXPECT_GE(image.overlap_count(), 1u);
  EXPECT_EQ(image.covered_bytes(), 200u);
}

}  // namespace
