#include "pfs/pfs.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace s3asim;
using pfs::Extent;
using pfs::FileHandle;
using pfs::Pfs;
using pfs::PfsParams;
using sim::Process;
using sim::Scheduler;
using sim::Time;

PfsParams test_params(std::uint32_t servers = 4, std::uint64_t strip = 1024) {
  PfsParams params;
  params.layout = pfs::Layout(strip, servers);
  params.disk = pfs::DiskModel::test_model();
  return params;
}

net::LinkParams fast_net() {
  net::LinkParams params;
  params.latency = 10;
  params.bandwidth_bps = 1e12;  // effectively free wire
  params.per_message_overhead = 0;
  return params;
}

struct Fixture {
  Scheduler sched;
  net::Network network;
  Pfs fs;
  explicit Fixture(PfsParams params = test_params(), std::uint32_t clients = 2)
      : network(sched, clients + params.layout.server_count(), fast_net()),
        fs(sched, network, /*server_endpoint_base=*/clients, params) {}

  ~Fixture() {
    fs.shutdown();
    sched.run();
  }
};

TEST(PfsTest, CreateFileReturnsDistinctHandles) {
  Fixture f;
  std::vector<FileHandle> handles;
  auto prog = [](Fixture& fx, std::vector<FileHandle>& out) -> Process {
    out.push_back(co_await fx.fs.create_file(0, "a"));
    out.push_back(co_await fx.fs.create_file(0, "b"));
  };
  f.sched.spawn(prog(f, handles));
  f.sched.run();
  ASSERT_EQ(handles.size(), 2u);
  EXPECT_NE(handles[0], handles[1]);
  EXPECT_EQ(f.fs.file_name(handles[0]), "a");
}

TEST(PfsTest, ContiguousWriteRecordsExtent) {
  Fixture f;
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    co_await fx.fs.write_contiguous(file, 0, 0, 5000, /*writer=*/1, /*query=*/2);
    EXPECT_TRUE(fx.fs.image(file).covers_exactly(5000));
    EXPECT_EQ(fx.fs.image(file).history()[0].writer, 1u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(PfsTest, ContiguousWriteFansOutOverServers) {
  Fixture f(test_params(4, 1024));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    // 4 KiB extent = one strip on each of 4 servers.
    co_await fx.fs.write_contiguous(file, 0, 0, 4096);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(f.fs.server_stats(s).requests, 1u) << "server " << s;
    EXPECT_EQ(f.fs.server_stats(s).bytes, 1024u);
    EXPECT_EQ(f.fs.server_stats(s).pairs, 1u);
  }
}

TEST(PfsTest, ListIoBatchesPairsPerServer) {
  Fixture f(test_params(2, 1024));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    // Three scattered extents, all inside strip 0 ⇒ server 0 only, 1 request,
    // 3 pairs.
    const std::vector<Extent> extents{Extent{0, 10}, Extent{100, 10},
                                      Extent{200, 10}};
    co_await fx.fs.write_list(file, 0, extents);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  EXPECT_EQ(f.fs.server_stats(0).requests, 1u);
  EXPECT_EQ(f.fs.server_stats(0).pairs, 3u);
  EXPECT_EQ(f.fs.server_stats(1).requests, 0u);
}

TEST(PfsTest, PosixIssuesOneRequestPerExtent) {
  Fixture f(test_params(2, 1024));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    const std::vector<Extent> extents{Extent{0, 10}, Extent{100, 10},
                                      Extent{200, 10}};
    co_await fx.fs.write_posix(file, 0, extents);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  EXPECT_EQ(f.fs.server_stats(0).requests, 3u);
  EXPECT_EQ(f.fs.server_stats(0).pairs, 3u);
}

TEST(PfsTest, PosixSlowerThanListForScatteredExtents) {
  // Same extent set, both strategies: POSIX must take strictly longer
  // because each extent pays a full round trip + per-request cost.
  const auto params = test_params(4, 1024);
  std::vector<Extent> extents;
  for (std::uint64_t i = 0; i < 64; ++i) extents.push_back(Extent{i * 2048, 512});

  Time posix_time = 0, list_time = 0;
  auto prog = [](Fixture& fx, const std::vector<Extent>& xs, bool use_list,
                 Time& out) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    const Time start = fx.sched.now();
    if (use_list) {
      co_await fx.fs.write_list(file, 0, xs);
    } else {
      co_await fx.fs.write_posix(file, 0, xs);
    }
    out = fx.sched.now() - start;
  };
  {
    Fixture f(params);
    f.sched.spawn(prog(f, extents, false, posix_time));
    f.sched.run();
  }
  {
    Fixture f(params);
    f.sched.spawn(prog(f, extents, true, list_time));
    f.sched.run();
  }
  EXPECT_GT(posix_time, 2 * list_time);
}

TEST(PfsTest, WriteServiceTimeIsExact) {
  // One server, one pair, known byte count: end-to-end time =
  // request wire (latency) + service + ack wire (latency).
  auto params = test_params(1, 1 << 20);
  Fixture f(params);
  Time elapsed = -1;
  auto prog = [](Fixture& fx, Time& out) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    const Time start = fx.sched.now();
    co_await fx.fs.write_contiguous(file, 0, 0, 1000);
    out = fx.sched.now() - start;
  };
  f.sched.spawn(prog(f, elapsed));
  f.sched.run();
  // service = per_request 1000 + per_pair 100 + 1000 B @1e9 = 1000 ns
  // wire: request 10 + ack 10 (bandwidth effectively free).
  const Time service = 1000 + 100 + 1000;
  EXPECT_NEAR(static_cast<double>(elapsed), static_cast<double>(service + 20), 30.0);
}

TEST(PfsTest, ServerQueueSerializesClients) {
  auto params = test_params(1, 1 << 20);
  Fixture f(params, /*clients=*/4);
  std::vector<Time> done(3, -1);
  auto prog = [](Fixture& fx, std::vector<Time>& done_at) -> Process {
    auto writer = [](Fixture& fx2, pfs::FileHandle file, net::EndpointId client,
                     std::uint64_t offset, Time& out) -> Process {
      co_await fx2.fs.write_contiguous(file, client, offset, 100'000);
      out = fx2.sched.now();
    };
    const auto file = co_await fx.fs.create_file(0, "out");
    fx.sched.spawn(writer(fx, file, 0, 0, done_at[0]));
    fx.sched.spawn(writer(fx, file, 1, 100'000, done_at[1]));
    fx.sched.spawn(writer(fx, file, 2, 200'000, done_at[2]));
    co_return;
  };
  f.sched.spawn(prog(f, done));
  f.sched.run();
  std::sort(done.begin(), done.end());
  // Each service is >= 100 µs of disk time; the three must be serialized.
  EXPECT_GE(done[1] - done[0], 100'000);
  EXPECT_GE(done[2] - done[1], 100'000);
}

TEST(PfsTest, SyncTouchesEveryServer) {
  Fixture f(test_params(4, 1024));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    co_await fx.fs.sync(file, 0);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_EQ(f.fs.server_stats(s).syncs, 1u);
}

TEST(PfsTest, ConcurrentDisjointWritersNoOverlap) {
  Fixture f(test_params(4, 256), /*clients=*/8);
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    auto writer = [](Fixture& fx2, pfs::FileHandle handle, std::uint32_t id) -> Process {
      std::vector<Extent> extents;
      for (std::uint64_t k = 0; k < 16; ++k)
        extents.push_back(Extent{(k * 8 + id) * 100, 100});
      co_await fx2.fs.write_list(handle, id, extents, id);
    };
    for (std::uint32_t id = 0; id < 8; ++id)
      fx.sched.spawn(writer(fx, file, id));
    co_return;
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  const auto& image = f.fs.image(0);
  EXPECT_EQ(image.overlap_count(), 0u);
  EXPECT_TRUE(image.covers_exactly(16 * 8 * 100));
}

TEST(PfsTest, AggregateStatsSumServers) {
  Fixture f(test_params(4, 1024));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    co_await fx.fs.write_contiguous(file, 0, 0, 4096);
    co_await fx.fs.sync(file, 0);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  const auto total = f.fs.aggregate_stats();
  EXPECT_EQ(total.requests, 4u);
  EXPECT_EQ(total.bytes, 4096u);
  EXPECT_EQ(total.syncs, 4u);
}

TEST(PfsTest, InvalidHandleRejected) {
  Fixture f;
  EXPECT_THROW((void)f.fs.image(99), std::invalid_argument);
}

}  // namespace
