/// Simulation-level tests of the client-side cache inside Pfs: write
/// absorption, flush on sync, lease revocation round trips between two
/// clients, close-time writeback via release_client, LRU eviction under
/// pressure, and read hit/miss traffic.

#include "pfs/pfs.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace s3asim;
using pfs::CacheParams;
using pfs::Extent;
using pfs::FileHandle;
using pfs::Pfs;
using pfs::PfsParams;
using sim::Process;
using sim::Scheduler;

constexpr std::uint64_t kStrip = 1024;
constexpr std::uint64_t kCacheBlock = 256;

PfsParams cached_params(std::uint64_t capacity_blocks,
                        std::uint32_t servers = 4,
                        std::uint64_t token_bytes = kStrip) {
  PfsParams params;
  params.layout = pfs::Layout(kStrip, servers);
  params.disk = pfs::DiskModel::test_model();
  params.cache.capacity_bytes = capacity_blocks * kCacheBlock;
  params.cache.block_bytes = kCacheBlock;
  params.cache.token_bytes = token_bytes;
  return params;
}

net::LinkParams fast_net() {
  net::LinkParams params;
  params.latency = 10;
  params.bandwidth_bps = 1e12;  // effectively free wire
  params.per_message_overhead = 0;
  return params;
}

struct Fixture {
  Scheduler sched;
  net::Network network;
  Pfs fs;
  explicit Fixture(PfsParams params, std::uint32_t clients = 2)
      : network(sched, clients + params.layout.server_count(), fast_net()),
        fs(sched, network, /*server_endpoint_base=*/clients, params) {}

  ~Fixture() {
    fs.shutdown();
    sched.run();
  }

  [[nodiscard]] std::uint64_t total_server_writes() const {
    std::uint64_t bytes = 0;
    for (std::uint32_t s = 0; s < fs.layout().server_count(); ++s)
      bytes += fs.server_stats(s).bytes;
    return bytes;
  }

  [[nodiscard]] std::uint64_t total_server_requests() const {
    std::uint64_t requests = 0;
    for (std::uint32_t s = 0; s < fs.layout().server_count(); ++s)
      requests += fs.server_stats(s).requests;
    return requests;
  }
};

TEST(CachePfsTest, WritesAreAbsorbedUntilSync) {
  Fixture f(cached_params(/*capacity_blocks=*/64));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    co_await fx.fs.write_contiguous(file, 0, 0, 2048, /*writer=*/1,
                                    /*query=*/7);
    // The image is exact at absorb time, before any flush...
    EXPECT_TRUE(fx.fs.image(file).covers_exactly(2048));
    EXPECT_EQ(fx.fs.image(file).history()[0].writer, 1u);
    // ...but no data has reached a server yet.
    EXPECT_EQ(fx.total_server_writes(), 0u);
    co_await fx.fs.sync(file, 0);
    EXPECT_EQ(fx.total_server_writes(), 2048u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  const pfs::CacheStats stats = f.fs.cache_stats();
  EXPECT_EQ(stats.write_misses, 2048 / kCacheBlock);
  EXPECT_GE(stats.token_grants, 1u);
  EXPECT_EQ(stats.token_conflicts, 0u);
  EXPECT_GE(stats.writebacks, 1u);
  EXPECT_EQ(stats.writeback_bytes, 2048u);
  // Lease traffic is metadata work on server 0, never disk `busy` time.
  EXPECT_GE(f.fs.server_stats(0).metadata_ops, 2u);  // create + grant
}

TEST(CachePfsTest, CoveredRewriteSkipsTokenTraffic) {
  Fixture f(cached_params(/*capacity_blocks=*/64));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    co_await fx.fs.write_contiguous(file, 0, 0, kStrip);
    const std::uint64_t grants = fx.fs.cache_stats().token_grants;
    // Rewriting inside the leased range needs no new lease round trip.
    co_await fx.fs.write_contiguous(file, 0, 128, 256);
    EXPECT_EQ(fx.fs.cache_stats().token_grants, grants);
    EXPECT_GE(fx.fs.cache_stats().write_hits, 1u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CachePfsTest, ConflictingWriterTriggersRevocationWriteback) {
  Fixture f(cached_params(/*capacity_blocks=*/64));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "shared");
    // Client 0 dirties [0, 512) under a write lease that spans the whole
    // first token granule [0, 1024).
    co_await fx.fs.write_contiguous(file, 0, 0, 512);
    EXPECT_EQ(fx.total_server_writes(), 0u);
    // Client 1 writes the other half of the granule: disjoint data, but
    // the lease conflicts — the metadata server revokes client 0's token,
    // which forces client 0's dirty bytes to disk.
    co_await fx.fs.write_contiguous(file, 1, 512, 512);
    const pfs::CacheStats stats = fx.fs.cache_stats();
    EXPECT_GE(stats.token_conflicts, 1u);
    EXPECT_GE(stats.token_revocations, 1u);
    EXPECT_GE(stats.invalidations, 1u);
    // The revoked dirty bytes were written back even though nobody synced.
    EXPECT_GE(fx.total_server_writes(), 512u);
    // Both writers' data is intact in the image.
    EXPECT_TRUE(fx.fs.image(file).covers_exactly(kStrip));
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CachePfsTest, ReleaseClientFlushesDirtyBlocks) {
  Fixture f(cached_params(/*capacity_blocks=*/64));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    co_await fx.fs.write_contiguous(file, 0, 0, kStrip);
    EXPECT_EQ(fx.total_server_writes(), 0u);
    co_await fx.fs.release_client(0);
    EXPECT_EQ(fx.total_server_writes(), kStrip);
    const pfs::CacheStats stats = fx.fs.cache_stats();
    EXPECT_EQ(stats.close_writebacks, kStrip / kCacheBlock);
    // All leases are gone: the next write needs a fresh grant.
    EXPECT_FALSE(fx.fs.token_manager().file_tokens(file).size() > 0);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CachePfsTest, CapacityPressureEvictsThroughFlushBehind) {
  // Two blocks of capacity, four strips of writes: eviction must kick in
  // and every byte still lands on the servers by the end.
  Fixture f(cached_params(/*capacity_blocks=*/2));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "big");
    for (std::uint64_t strip = 0; strip < 4; ++strip)
      co_await fx.fs.write_contiguous(file, 0, strip * kStrip, kStrip);
    co_await fx.fs.release_client(0);
    EXPECT_EQ(fx.total_server_writes(), 4 * kStrip);
    EXPECT_TRUE(fx.fs.image(file).covers_exactly(4 * kStrip));
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  EXPECT_GE(f.fs.cache_stats().evictions, 1u);
  EXPECT_GE(f.fs.cache_stats().writebacks, 1u);
}

TEST(CachePfsTest, RepeatedReadHitsAvoidServerTraffic) {
  Fixture f(cached_params(/*capacity_blocks=*/64));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "db");
    co_await fx.fs.write_contiguous(file, 0, 0, 4 * kStrip);
    co_await fx.fs.sync(file, 0);
    // Client 1 reads the range twice: the first fetches, the second hits.
    co_await fx.fs.read_contiguous(file, 1, 0, 2 * kStrip);
    const std::uint64_t requests = fx.total_server_requests();
    co_await fx.fs.read_contiguous(file, 1, 0, 2 * kStrip);
    EXPECT_EQ(fx.total_server_requests(), requests);
    EXPECT_EQ(fx.fs.bytes_read(file), 4 * kStrip);
    const pfs::CacheStats stats = fx.fs.cache_stats();
    EXPECT_GE(stats.read_misses, 1u);
    EXPECT_GE(stats.read_hits, 2 * kStrip / kCacheBlock);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CachePfsTest, ReadsHoldLeasesSymmetricallyWithWrites) {
  // The read path participates in the token protocol exactly like the
  // write path: the first read acquires a read lease, reads inside the
  // leased range need no further token traffic, and a competing writer
  // revokes the reader's lease (and cached blocks).
  Fixture f(cached_params(/*capacity_blocks=*/64));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "shared");
    co_await fx.fs.read_contiguous(file, 1, 0, kStrip);
    const pfs::CacheStats after_first = fx.fs.cache_stats();
    EXPECT_GE(after_first.token_grants, 1u);
    // Covered re-read: a hit, with zero additional lease round trips.
    co_await fx.fs.read_contiguous(file, 1, 0, kCacheBlock);
    EXPECT_EQ(fx.fs.cache_stats().token_grants, after_first.token_grants);
    EXPECT_GE(fx.fs.cache_stats().read_hits, 1u);
    // A writer on client 0 over the same range must revoke the read lease.
    co_await fx.fs.write_contiguous(file, 0, 0, kCacheBlock);
    EXPECT_GE(fx.fs.cache_stats().token_revocations, 1u);
    EXPECT_GE(fx.fs.cache_stats().invalidations, 1u);
    // The reader's next access re-acquires and re-fetches — no stale hit.
    const std::uint64_t grants = fx.fs.cache_stats().token_grants;
    co_await fx.fs.read_contiguous(file, 1, 0, kCacheBlock);
    EXPECT_GT(fx.fs.cache_stats().token_grants, grants);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CachePfsTest, ReadLeaseSpansAreGranulePrecise) {
  // Token granularity = one cache block here, so a strided read list must
  // lease only the granules it touches — not the bounding span.
  Fixture f(cached_params(/*capacity_blocks=*/64, /*servers=*/2,
                          /*token_bytes=*/kCacheBlock));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "strided");
    const std::vector<Extent> extents{Extent{0, 64},
                                      Extent{4 * kCacheBlock, 64}};
    co_await fx.fs.read_list(file, 1, extents);
    // Client 0 writes *between* the two read granules: no read lease
    // covers that range, so no revocation round trip fires.
    co_await fx.fs.write_contiguous(file, 0, 2 * kCacheBlock, 64);
    EXPECT_EQ(fx.fs.cache_stats().token_revocations, 0u);
    // Writing over a leased granule does revoke.
    co_await fx.fs.write_contiguous(file, 0, 0, 64);
    EXPECT_GE(fx.fs.cache_stats().token_revocations, 1u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CachePfsTest, SievedAccessesDeferToCache) {
  // With the cache on, sieved reads/writes ride the cache path: the sieve
  // counters stay untouched and absorption handles coalescing instead.
  Fixture f(cached_params(/*capacity_blocks=*/64));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "out");
    const std::vector<Extent> extents{Extent{0, 64}, Extent{256, 64}};
    co_await fx.fs.write_sieved(file, 0, extents, /*buffer_bytes=*/4096);
    co_await fx.fs.read_sieved(file, 0, extents, /*buffer_bytes=*/4096);
    EXPECT_FALSE(fx.fs.sieve_stats().used());
    EXPECT_GE(fx.fs.cache_stats().write_misses, 1u);
    EXPECT_GE(fx.fs.cache_stats().read_hits, 1u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CachePfsTest, PosixPathPaysPerCallLeaseChecks) {
  Fixture f(cached_params(/*capacity_blocks=*/64, /*servers=*/2,
                          /*token_bytes=*/kCacheBlock));
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "posix");
    const std::vector<Extent> extents{Extent{0, 64}, Extent{kStrip, 64},
                                      Extent{2 * kStrip, 64}};
    co_await fx.fs.write_posix(file, 0, extents);
    // Each extent acquired its lease in a separate round trip.
    EXPECT_EQ(fx.fs.cache_stats().token_grants, 3u);
    EXPECT_EQ(fx.total_server_writes(), 0u);  // data still write-back
    co_await fx.fs.sync(file, 0);
    EXPECT_EQ(fx.total_server_writes(), 3 * 64u);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
}

TEST(CachePfsTest, CacheDisabledReportsNoCacheState) {
  PfsParams params;
  params.layout = pfs::Layout(kStrip, 2);
  params.disk = pfs::DiskModel::test_model();
  Fixture f(params);
  EXPECT_FALSE(f.fs.cache_enabled());
  auto prog = [](Fixture& fx) -> Process {
    const auto file = co_await fx.fs.create_file(0, "plain");
    co_await fx.fs.write_contiguous(file, 0, 0, kStrip);
  };
  f.sched.spawn(prog(f));
  f.sched.run();
  const pfs::CacheStats stats = f.fs.cache_stats();
  EXPECT_EQ(stats.write_misses, 0u);
  EXPECT_EQ(stats.token_grants, 0u);
}

TEST(CachePfsTest, InvalidCacheGeometryIsRejected) {
  // A token granularity finer than the cache block (or any non-multiple)
  // would let one lease boundary split a block.
  EXPECT_THROW(
      { Fixture f(cached_params(4, 4, /*token_bytes=*/kCacheBlock / 2)); },
      std::invalid_argument);
  // A block that does not divide the strip would straddle servers.
  PfsParams bad;
  bad.layout = pfs::Layout(kStrip, 2);
  bad.disk = pfs::DiskModel::test_model();
  bad.cache.capacity_bytes = 4 * 384;
  bad.cache.block_bytes = 384;
  bad.cache.token_bytes = 384;
  EXPECT_THROW({ Fixture f(bad); }, std::invalid_argument);
}

}  // namespace
