#include "bio/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace s3asim::bio;

struct ReportFixture : ::testing::Test {
  std::vector<Sequence> subjects{
      {"subj|1", "exact copy", "TTTTTTACGTACGTACGTACGTACGTGGGGGG"},
      {"subj|2", "unrelated", std::string(40, 'T')}};
  BlastParams params = [] {
    BlastParams p;
    p.k = 8;
    p.min_score = 16;
    return p;
  }();
  BlastSearcher searcher{subjects, params};
  Sequence query{"q1", "test query", "ACGTACGTACGTACGTACGT"};
};

TEST_F(ReportFixture, FormatMatchHasThreeRowStructure) {
  const auto matches = searcher.search(query);
  ASSERT_FALSE(matches.empty());
  const auto text =
      format_match(query, subjects[matches[0].subject], matches[0]);
  EXPECT_NE(text.find("Query  "), std::string::npos);
  EXPECT_NE(text.find("Sbjct  "), std::string::npos);
  EXPECT_NE(text.find("Score = "), std::string::npos);
  EXPECT_NE(text.find("|"), std::string::npos);
}

TEST_F(ReportFixture, PerfectMatchIsAllPipes) {
  const auto matches = searcher.search(query);
  ASSERT_FALSE(matches.empty());
  const Match& match = matches[0];
  EXPECT_DOUBLE_EQ(identity_fraction(query, subjects[match.subject], match),
                   1.0);
  const auto text = format_match(query, subjects[match.subject], match);
  EXPECT_NE(text.find("(100%)"), std::string::npos);
}

TEST_F(ReportFixture, MismatchShowsGapInPipeRow) {
  Sequence mutated_query = query;
  mutated_query.data[10] = mutated_query.data[10] == 'A' ? 'C' : 'A';
  const auto matches = searcher.search(mutated_query);
  ASSERT_FALSE(matches.empty());
  const Match& match = matches[0];
  const double identity =
      identity_fraction(mutated_query, subjects[match.subject], match);
  EXPECT_LT(identity, 1.0);
  EXPECT_GT(identity, 0.8);
}

TEST_F(ReportFixture, LineWidthWrapsLongAlignments) {
  const auto matches = searcher.search(query);
  ASSERT_FALSE(matches.empty());
  ReportOptions options;
  options.line_width = 10;
  const auto text =
      format_match(query, subjects[matches[0].subject], matches[0], options);
  // 20-base HSP at width 10 ⇒ two Query rows.
  const auto count = [&](const std::string& needle) {
    std::size_t occurrences = 0, pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      ++occurrences;
      pos += needle.size();
    }
    return occurrences;
  };
  EXPECT_GE(count("Query  "), 2u);
}

TEST_F(ReportFixture, HeaderOptional) {
  const auto matches = searcher.search(query);
  ASSERT_FALSE(matches.empty());
  ReportOptions options;
  options.include_header = false;
  const auto text =
      format_match(query, subjects[matches[0].subject], matches[0], options);
  EXPECT_EQ(text.find("Score ="), std::string::npos);
}

TEST_F(ReportFixture, FullReportListsQueryAndMatches) {
  const auto matches = searcher.search(query);
  const auto text = format_report(query, searcher, matches);
  EXPECT_NE(text.find("Query= q1"), std::string::npos);
  EXPECT_NE(text.find("(20 letters)"), std::string::npos);
  EXPECT_NE(text.find("subj|1"), std::string::npos);
}

TEST_F(ReportFixture, EmptyReportSaysNoHits) {
  const Sequence hopeless{"none", "", "CCCCCCCCCCCC"};
  const auto matches = searcher.search(hopeless);
  const auto text = format_report(hopeless, searcher, matches);
  EXPECT_NE(text.find("No hits found"), std::string::npos);
}

TEST_F(ReportFixture, FormattedSizeWithinModelCap) {
  // The simulator's result-size rule: formatted output ≤ 3 × max(query,
  // subject) — check the real formatter obeys it (modulo the fixed header,
  // which estimate_output_bytes also carries).
  const auto matches = searcher.search(query);
  ASSERT_FALSE(matches.empty());
  for (const Match& match : matches) {
    const Sequence& subject = searcher.subjects()[match.subject];
    const auto text = format_match(query, subject, match);
    const std::uint64_t cap =
        3 * std::max(query.length(), subject.length()) + 512;
    EXPECT_LE(text.size(), cap);
  }
}

TEST_F(ReportFixture, RejectsTinyLineWidth) {
  const auto matches = searcher.search(query);
  ASSERT_FALSE(matches.empty());
  ReportOptions options;
  options.line_width = 4;
  EXPECT_THROW((void)format_match(query, subjects[matches[0].subject],
                                  matches[0], options),
               std::invalid_argument);
}

}  // namespace
