#include "bio/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace {

using namespace s3asim::bio;
using s3asim::util::BoxHistogram;
using s3asim::util::HistogramBin;

GeneratorConfig small_config(std::uint64_t seed = 1) {
  GeneratorConfig config;
  config.seed = seed;
  config.length_histogram = BoxHistogram{{HistogramBin{50, 200, 1.0}}};
  return config;
}

TEST(GeneratorTest, ProducesRequestedCount) {
  const auto sequences = generate_sequences(small_config(), 25);
  EXPECT_EQ(sequences.size(), 25u);
}

TEST(GeneratorTest, LengthsWithinHistogramRange) {
  const auto sequences = generate_sequences(small_config(), 100);
  for (const auto& sequence : sequences) {
    EXPECT_GE(sequence.length(), 50u);
    EXPECT_LE(sequence.length(), 200u);
  }
}

TEST(GeneratorTest, OnlyAcgtCharacters) {
  const auto sequences = generate_sequences(small_config(), 10);
  for (const auto& sequence : sequences)
    for (const char c : sequence.data)
      EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const auto a = generate_sequences(small_config(9), 5);
  const auto b = generate_sequences(small_config(9), 5);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].data, b[i].data);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const auto a = generate_sequences(small_config(1), 5);
  const auto b = generate_sequences(small_config(2), 5);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].data != b[i].data) any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, GcContentRespected) {
  auto config = small_config();
  config.gc_content = 0.8;
  config.length_histogram = BoxHistogram{{HistogramBin{5000, 5000, 1.0}}};
  const auto sequences = generate_sequences(config, 4);
  std::uint64_t gc = 0, total = 0;
  for (const auto& sequence : sequences)
    for (const char c : sequence.data) {
      if (c == 'G' || c == 'C') ++gc;
      ++total;
    }
  EXPECT_NEAR(static_cast<double>(gc) / static_cast<double>(total), 0.8, 0.03);
}

TEST(GeneratorTest, UniqueIds) {
  const auto sequences = generate_sequences(small_config(), 50);
  std::set<std::string> ids;
  for (const auto& sequence : sequences) ids.insert(sequence.id);
  EXPECT_EQ(ids.size(), 50u);
}

TEST(GeneratorTest, RejectsBadGcContent) {
  auto config = small_config();
  config.gc_content = 1.5;
  EXPECT_THROW((void)generate_sequences(config, 1), std::invalid_argument);
}

TEST(GenerateQueriesTest, PaperQuerySetSizeIsAbout86KiB) {
  // 20 queries from the paper's histogram: expect roughly 86 KB total.
  const auto queries = generate_queries(/*seed=*/20060627, 20);
  EXPECT_EQ(queries.size(), 20u);
  const auto total = total_residues(queries);
  EXPECT_GT(total, 86'000u / 3);
  EXPECT_LT(total, 86'000u * 3);
}

TEST(FragmentDatabaseTest, EveryFragmentNonEmptyAndDisjoint) {
  const auto database = generate_sequences(small_config(), 64);
  const auto fragments = fragment_database(database, 8);
  ASSERT_EQ(fragments.size(), 8u);
  std::set<std::size_t> seen;
  for (const auto& fragment : fragments) {
    EXPECT_FALSE(fragment.empty());
    for (const std::size_t index : fragment) {
      EXPECT_TRUE(seen.insert(index).second) << "sequence in two fragments";
    }
  }
  EXPECT_EQ(seen.size(), database.size());
}

TEST(FragmentDatabaseTest, BalancedByResidues) {
  auto config = small_config();
  config.length_histogram = BoxHistogram{{HistogramBin{100, 10'000, 1.0}}};
  const auto database = generate_sequences(config, 200);
  const auto fragments = fragment_database(database, 4);
  std::vector<std::uint64_t> loads;
  for (const auto& fragment : fragments) {
    std::uint64_t load = 0;
    for (const std::size_t index : fragment) load += database[index].length();
    loads.push_back(load);
  }
  const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  EXPECT_LT(static_cast<double>(*hi - *lo),
            0.15 * static_cast<double>(*hi));  // within 15%
}

TEST(FragmentDatabaseTest, MoreFragmentsThanSequences) {
  const auto database = generate_sequences(small_config(), 3);
  const auto fragments = fragment_database(database, 8);
  std::size_t non_empty = 0;
  for (const auto& fragment : fragments)
    if (!fragment.empty()) ++non_empty;
  EXPECT_EQ(non_empty, 3u);
}

TEST(FragmentDatabaseTest, FragmentsPreserveOrderWithin) {
  const auto database = generate_sequences(small_config(), 32);
  const auto fragments = fragment_database(database, 4);
  for (const auto& fragment : fragments)
    EXPECT_TRUE(std::is_sorted(fragment.begin(), fragment.end()));
}

TEST(FragmentDatabaseTest, RejectsZeroFragments) {
  const auto database = generate_sequences(small_config(), 4);
  EXPECT_THROW((void)fragment_database(database, 0), std::invalid_argument);
}

TEST(TotalResiduesTest, SumsLengths) {
  std::vector<Sequence> sequences{{"a", "", "ACGT"}, {"b", "", "AC"}};
  EXPECT_EQ(total_residues(sequences), 6u);
}

}  // namespace
