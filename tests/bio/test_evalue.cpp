#include "bio/evalue.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace s3asim::bio;

TEST(BitScoreTest, IncreasesWithRawScore) {
  EXPECT_LT(bit_score(10), bit_score(20));
  EXPECT_LT(bit_score(20), bit_score(40));
}

TEST(BitScoreTest, MatchesFormula) {
  const KarlinAltschulParams params{0.625, 0.41};
  const double expected = (0.625 * 30 - std::log(0.41)) / std::log(2.0);
  EXPECT_NEAR(bit_score(30, params), expected, 1e-12);
}

TEST(BitScoreTest, RejectsDegenerateParams) {
  EXPECT_THROW((void)bit_score(10, {0.0, 0.41}), std::invalid_argument);
  EXPECT_THROW((void)bit_score(10, {0.625, 0.0}), std::invalid_argument);
}

TEST(ExpectValueTest, DecreasesWithScore) {
  EXPECT_GT(expect_value(20, 1'000, 1'000'000),
            expect_value(40, 1'000, 1'000'000));
}

TEST(ExpectValueTest, ScalesWithSearchSpace) {
  const double small = expect_value(30, 1'000, 1'000'000);
  const double big = expect_value(30, 1'000, 10'000'000);
  EXPECT_NEAR(big / small, 10.0, 1e-9);
}

TEST(ExpectValueTest, DoublingBitScoreHalvesRepeatedly) {
  // E halves per extra bit: S' + 1 ⇒ E/2.  One raw-score point adds
  // λ/ln2 bits.
  const double e1 = expect_value(30, 1'000, 1'000'000);
  const double e2 = expect_value(31, 1'000, 1'000'000);
  EXPECT_NEAR(e1 / e2, std::exp2(0.625 / std::log(2.0)), 1e-9);
}

TEST(ExpectValueTest, RejectsEmptySearchSpace) {
  EXPECT_THROW((void)expect_value(30, 0, 100), std::invalid_argument);
  EXPECT_THROW((void)expect_value(30, 100, 0), std::invalid_argument);
}

TEST(MinSignificantScoreTest, ThresholdRoundTrip) {
  constexpr std::uint64_t m = 2'000, n = 5'000'000;
  for (const double threshold : {10.0, 1e-3, 1e-10}) {
    const int cutoff = min_significant_score(threshold, m, n);
    EXPECT_LT(expect_value(cutoff, m, n), threshold);
    EXPECT_GE(expect_value(cutoff - 1, m, n), threshold * 0.99);
  }
}

TEST(MinSignificantScoreTest, StricterThresholdNeedsHigherScore) {
  EXPECT_GT(min_significant_score(1e-10, 1'000, 1'000'000),
            min_significant_score(10.0, 1'000, 1'000'000));
}

TEST(MinSignificantScoreTest, BiggerDatabaseNeedsHigherScore) {
  EXPECT_GT(min_significant_score(1e-3, 1'000, 1ull << 40),
            min_significant_score(1e-3, 1'000, 1'000'000));
}

}  // namespace
