#include "bio/align.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using s3asim::bio::banded_smith_waterman;
using s3asim::bio::extend_ungapped;
using s3asim::bio::Hsp;
using s3asim::bio::ScoringParams;

TEST(ExtendUngappedTest, PerfectMatchExtendsFully) {
  const std::string query = "ACGTACGTAC";
  const std::string subject = "ACGTACGTAC";
  const Hsp hsp = extend_ungapped(query, subject, 3, 3, 4, {});
  EXPECT_EQ(hsp.query_start, 0u);
  EXPECT_EQ(hsp.subject_start, 0u);
  EXPECT_EQ(hsp.length, 10u);
  EXPECT_EQ(hsp.score, 20);  // 10 matches × 2
}

TEST(ExtendUngappedTest, StopsAtMismatchRun) {
  //             seed here vvvv
  const std::string query = "ACGTAAAA";
  const std::string subject = "ACGTCCCC";
  const Hsp hsp = extend_ungapped(query, subject, 0, 0, 4, {});
  EXPECT_EQ(hsp.length, 4u);
  EXPECT_EQ(hsp.score, 8);
}

TEST(ExtendUngappedTest, ToleratesSingleMismatchInsideGoodRegion) {
  const std::string query = "AAAACGTTAAAA";
  const std::string subject = "AAAACGATAAAA";  // one mismatch at index 6
  ScoringParams params;
  const Hsp hsp = extend_ungapped(query, subject, 0, 0, 4, params);
  EXPECT_EQ(hsp.length, 12u);
  EXPECT_EQ(hsp.score, 11 * params.match + params.mismatch);
}

TEST(ExtendUngappedTest, LeftwardExtensionWorks) {
  const std::string query = "ACGTACGT";
  const std::string subject = "ACGTACGT";
  // Seed at the right end: extension must reach back to position 0.
  const Hsp hsp = extend_ungapped(query, subject, 4, 4, 4, {});
  EXPECT_EQ(hsp.query_start, 0u);
  EXPECT_EQ(hsp.length, 8u);
}

TEST(ExtendUngappedTest, XdropLimitsWastedExtension) {
  ScoringParams tight;
  tight.xdrop = 4;
  const std::string query = "ACGT" + std::string(100, 'A');
  const std::string subject = "ACGT" + std::string(100, 'C');
  const Hsp hsp = extend_ungapped(query, subject, 0, 0, 4, tight);
  // With xdrop 4 and mismatch -3, extension stops after ~2 mismatches.
  EXPECT_LE(hsp.length, 8u);
  EXPECT_EQ(hsp.score, 8);
}

TEST(ExtendUngappedTest, RejectsOutOfRangeSeed) {
  EXPECT_THROW(
      (void)extend_ungapped("ACGT", "ACGT", 2, 0, 4, {}),
      std::invalid_argument);
}

TEST(BandedSwTest, PerfectMatchScoresFullLength) {
  const std::string s = "ACGTACGTACGT";
  EXPECT_EQ(banded_smith_waterman(s, s, 0, 4, {}), 24);
}

TEST(BandedSwTest, EmptyInputsScoreZero) {
  EXPECT_EQ(banded_smith_waterman("", "ACGT", 0, 4, {}), 0);
  EXPECT_EQ(banded_smith_waterman("ACGT", "", 0, 4, {}), 0);
}

TEST(BandedSwTest, LocalAlignmentIgnoresFlankingJunk) {
  const std::string query = "TTTTTTACGTACGTTTTTTT";
  const std::string subject = "GGGGGGACGTACGTGGGGGG";
  const int score = banded_smith_waterman(query, subject, 0, 8, {});
  EXPECT_EQ(score, 16);  // the 8-base common core
}

TEST(BandedSwTest, GapRecoversAlignment) {
  // subject = query with one base deleted; ungapped would break at the gap,
  // gapped alignment recovers most of the score.
  const std::string query = "ACGTACGTACGTACGT";
  std::string subject = query;
  subject.erase(8, 1);
  ScoringParams params;
  const int gapped = banded_smith_waterman(query, subject, 0, 4, params);
  // 15 matches + one gap: 15×2 - 7 = 23.
  EXPECT_GE(gapped, 20);
  const int left_only = 8 * params.match;
  EXPECT_GT(gapped, left_only);
}

TEST(BandedSwTest, DiagonalShiftFindsOffsetMatch) {
  const std::string query = "ACGTACGT";
  const std::string subject = "TTTTTTTTTTACGTACGT";
  // Match lies on diagonal +10; searching near diagonal 0 with band 2 misses
  // it, while diagonal 10 finds it.
  EXPECT_LT(banded_smith_waterman(query, subject, 0, 2, {}), 8);
  EXPECT_EQ(banded_smith_waterman(query, subject, 10, 2, {}), 16);
}

TEST(BandedSwTest, ScoreNeverNegative) {
  EXPECT_EQ(banded_smith_waterman("AAAA", "CCCC", 0, 2, {}), 0);
}

TEST(BandedSwTest, WiderBandNeverDecreasesScore) {
  const std::string query = "ACGTTACGGTACGT";
  const std::string subject = "ACGTACGTACGT";
  int previous = 0;
  for (const std::uint32_t band : {1u, 2u, 4u, 8u, 16u}) {
    const int score = banded_smith_waterman(query, subject, 0, band, {});
    EXPECT_GE(score, previous);
    previous = score;
  }
}

}  // namespace
