#include "bio/kmer_index.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using s3asim::bio::KmerIndex;
using s3asim::bio::SeedHit;
using s3asim::bio::Sequence;

std::vector<Sequence> subjects(std::initializer_list<std::string> data) {
  std::vector<Sequence> result;
  int i = 0;
  for (const auto& d : data) result.push_back(Sequence{"s" + std::to_string(i++), "", d});
  return result;
}

TEST(KmerIndexTest, FindsExactWord) {
  const auto set = subjects({"AAAACGTAAAA"});
  const KmerIndex index(set, 4);
  const auto hits = index.lookup("ACGT");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (SeedHit{0, 3}));
}

TEST(KmerIndexTest, FindsAllOccurrences) {
  const auto set = subjects({"ACGTACGT"});
  const KmerIndex index(set, 4);
  const auto hits = index.lookup("ACGT");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].position, 0u);
  EXPECT_EQ(hits[1].position, 4u);
}

TEST(KmerIndexTest, SearchesAcrossSequences) {
  const auto set = subjects({"TTTTACGT", "ACGTTTTT"});
  const KmerIndex index(set, 4);
  const auto hits = index.lookup("ACGT");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].sequence, 0u);
  EXPECT_EQ(hits[1].sequence, 1u);
}

TEST(KmerIndexTest, AbsentWordIsEmpty) {
  const auto set = subjects({"AAAAAAA"});
  const KmerIndex index(set, 4);
  EXPECT_TRUE(index.lookup("CCCC").empty());
}

TEST(KmerIndexTest, NonAcgtWordIsEmpty) {
  const auto set = subjects({"AAAAAAA"});
  const KmerIndex index(set, 4);
  EXPECT_TRUE(index.lookup("ANNA").empty());
}

TEST(KmerIndexTest, NonAcgtInSubjectBreaksWords) {
  // The N at position 4 invalidates every word overlapping it.
  const auto set = subjects({"ACGTNACGT"});
  const KmerIndex index(set, 4);
  const auto hits = index.lookup("ACGT");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].position, 0u);
  EXPECT_EQ(hits[1].position, 5u);
}

TEST(KmerIndexTest, ShortSequenceContributesNothing) {
  const auto set = subjects({"ACG"});
  const KmerIndex index(set, 4);
  EXPECT_EQ(index.total_positions(), 0u);
}

TEST(KmerIndexTest, TotalPositionsCountsEveryWindow) {
  const auto set = subjects({"ACGTACGTT"});  // 9 bases, k=4 ⇒ 6 windows
  const KmerIndex index(set, 4);
  EXPECT_EQ(index.total_positions(), 6u);
}

TEST(KmerIndexTest, RejectsBadK) {
  const auto set = subjects({"ACGT"});
  EXPECT_THROW(KmerIndex(set, 2), std::invalid_argument);
  EXPECT_THROW(KmerIndex(set, 40), std::invalid_argument);
}

TEST(KmerIndexTest, RejectsWrongLookupLength) {
  const auto set = subjects({"ACGTACGT"});
  const KmerIndex index(set, 4);
  EXPECT_THROW((void)index.lookup("ACGTA"), std::invalid_argument);
}

TEST(KmerIndexTest, PackRoundTripDistinctness) {
  std::uint64_t a = 0, b = 0;
  ASSERT_TRUE(KmerIndex::pack("ACGT", a));
  ASSERT_TRUE(KmerIndex::pack("TGCA", b));
  EXPECT_NE(a, b);
  EXPECT_FALSE(KmerIndex::pack("ACGN", a));
}

TEST(KmerIndexTest, LargeKWorks) {
  const std::string word(31, 'A');
  const auto set = subjects({word + "CCC"});
  const KmerIndex index(set, 31);
  EXPECT_EQ(index.lookup(word).size(), 1u);
}

}  // namespace
