#include "bio/blast.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bio/generator.hpp"

namespace {

using namespace s3asim::bio;
using s3asim::util::BoxHistogram;
using s3asim::util::HistogramBin;

std::vector<Sequence> make_subjects() {
  // Subject 0 contains the query exactly; subject 1 a mutated copy;
  // subject 2 unrelated.
  const std::string core = "ACGTTGCAACGGTTAACCGGATCGATCG";
  std::vector<Sequence> subjects;
  subjects.push_back({"exact", "", "TTTTTT" + core + "GGGGGG"});
  std::string mutated = core;
  mutated[5] = mutated[5] == 'A' ? 'C' : 'A';
  mutated[15] = mutated[15] == 'G' ? 'T' : 'G';
  subjects.push_back({"mutated", "", "AAAAAA" + mutated + "CCCCCC"});
  subjects.push_back({"unrelated", "", std::string(60, 'T')});
  return subjects;
}

BlastParams quick_params() {
  BlastParams params;
  params.k = 8;
  params.min_score = 16;
  return params;
}

TEST(BlastTest, FindsExactMatch) {
  BlastSearcher searcher(make_subjects(), quick_params());
  const Sequence query{"q", "", "ACGTTGCAACGGTTAACCGGATCGATCG"};
  const auto matches = searcher.search(query);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].subject, 0u);  // exact copy scores highest
}

TEST(BlastTest, RanksExactAboveMutated) {
  BlastSearcher searcher(make_subjects(), quick_params());
  const Sequence query{"q", "", "ACGTTGCAACGGTTAACCGGATCGATCG"};
  const auto matches = searcher.search(query);
  ASSERT_GE(matches.size(), 2u);
  EXPECT_EQ(matches[0].subject, 0u);
  EXPECT_EQ(matches[1].subject, 1u);
  EXPECT_GT(matches[0].score, matches[1].score);
}

TEST(BlastTest, UnrelatedSubjectNotReported) {
  BlastSearcher searcher(make_subjects(), quick_params());
  const Sequence query{"q", "", "ACGTTGCAACGGTTAACCGGATCGATCG"};
  for (const auto& match : searcher.search(query))
    EXPECT_NE(match.subject, 2u);
}

TEST(BlastTest, ScoresSortedDescending) {
  GeneratorConfig config;
  config.seed = 3;
  config.length_histogram = BoxHistogram{{HistogramBin{200, 400, 1.0}}};
  auto subjects = generate_sequences(config, 30);
  // Plant the query inside several subjects to guarantee hits.
  const std::string planted = "ACGTTGCAACGGTTAACCGGATCGATCGAATTGGCC";
  for (std::size_t i = 0; i < subjects.size(); i += 3)
    subjects[i].data.insert(subjects[i].data.size() / 2, planted);

  BlastSearcher searcher(std::move(subjects), quick_params());
  const auto matches = searcher.search({"q", "", planted});
  ASSERT_GE(matches.size(), 5u);
  EXPECT_TRUE(std::is_sorted(matches.begin(), matches.end(),
                             [](const Match& a, const Match& b) {
                               return a.score > b.score ||
                                      (a.score == b.score && a.subject < b.subject);
                             }));
}

TEST(BlastTest, AtMostOneMatchPerSubject) {
  auto subjects = make_subjects();
  // Subject with the query planted twice — still one (best) match.
  subjects.push_back({"double", "",
                      "ACGTTGCAACGGTTAACCGGATCGATCG" + std::string(20, 'T') +
                          "ACGTTGCAACGGTTAACCGGATCGATCG"});
  BlastSearcher searcher(std::move(subjects), quick_params());
  const auto matches = searcher.search({"q", "", "ACGTTGCAACGGTTAACCGGATCGATCG"});
  std::set<std::uint32_t> seen;
  for (const auto& match : matches)
    EXPECT_TRUE(seen.insert(match.subject).second);
}

TEST(BlastTest, ShortQueryYieldsNothing) {
  BlastSearcher searcher(make_subjects(), quick_params());
  EXPECT_TRUE(searcher.search({"q", "", "ACG"}).empty());
}

TEST(BlastTest, MaxMatchesTruncates) {
  GeneratorConfig config;
  config.seed = 11;
  config.length_histogram = BoxHistogram{{HistogramBin{100, 150, 1.0}}};
  auto subjects = generate_sequences(config, 50);
  const std::string planted = "ACGTTGCAACGGTTAACCGGATCGATCG";
  for (auto& subject : subjects) subject.data += planted;
  auto params = quick_params();
  params.max_matches = 7;
  BlastSearcher searcher(std::move(subjects), params);
  const auto matches = searcher.search({"q", "", planted});
  EXPECT_EQ(matches.size(), 7u);
}

TEST(BlastTest, OutputBytesBoundedByPaperRule) {
  BlastSearcher searcher(make_subjects(), quick_params());
  const Sequence query{"q", "", "ACGTTGCAACGGTTAACCGGATCGATCG"};
  for (const auto& match : searcher.search(query)) {
    const auto& subject = searcher.subjects()[match.subject];
    EXPECT_LE(match.output_bytes,
              3 * std::max(query.data.size(), subject.data.size()));
    EXPECT_GT(match.output_bytes, 0u);
  }
}

TEST(EstimateOutputBytesTest, CapAppliesToLongAlignments) {
  EXPECT_EQ(estimate_output_bytes(100, 50, 1'000'000), 300u);
}

TEST(EstimateOutputBytesTest, ShortAlignmentUsesAlignedSize) {
  const auto size = estimate_output_bytes(10'000, 10'000, 20);
  EXPECT_EQ(size, 3 * 20 + 256u);
}

TEST(BlastTest, DeterministicAcrossRuns) {
  BlastSearcher searcher(make_subjects(), quick_params());
  const Sequence query{"q", "", "ACGTTGCAACGGTTAACCGGATCGATCG"};
  const auto a = searcher.search(query);
  const auto b = searcher.search(query);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].subject, b[i].subject);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

}  // namespace
