#include "bio/fasta.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "bio/generator.hpp"

namespace {

using s3asim::bio::FastaReader;
using s3asim::bio::FastaWriter;
using s3asim::bio::Sequence;

TEST(FastaReaderTest, ParsesSingleRecord) {
  std::istringstream input(">seq1 a description\nACGT\nACGT\n");
  FastaReader reader(input);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->id, "seq1");
  EXPECT_EQ(record->description, "a description");
  EXPECT_EQ(record->data, "ACGTACGT");
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FastaReaderTest, ParsesMultipleRecords) {
  std::istringstream input(">a\nAC\n>b\nGT\n>c\nTT\n");
  FastaReader reader(input);
  const auto all = reader.read_all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, "a");
  EXPECT_EQ(all[1].data, "GT");
  EXPECT_EQ(all[2].id, "c");
}

TEST(FastaReaderTest, EmptyInputYieldsNothing) {
  std::istringstream input("");
  FastaReader reader(input);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FastaReaderTest, SkipsBlankLines) {
  std::istringstream input("\n\n>x\n\nAC\n\nGT\n\n");
  FastaReader reader(input);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->data, "ACGT");
}

TEST(FastaReaderTest, UppercasesData) {
  std::istringstream input(">x\nacgtN\n");
  FastaReader reader(input);
  EXPECT_EQ(reader.next()->data, "ACGTN");
}

TEST(FastaReaderTest, HandlesWindowsLineEndings) {
  std::istringstream input(">x desc\r\nACGT\r\n");
  FastaReader reader(input);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->description, "desc");
  EXPECT_EQ(record->data, "ACGT");
}

TEST(FastaReaderTest, RejectsDataBeforeHeader) {
  std::istringstream input("ACGT\n>x\nAC\n");
  FastaReader reader(input);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

TEST(FastaReaderTest, RecordWithNoData) {
  std::istringstream input(">empty\n>full\nAC\n");
  FastaReader reader(input);
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->data.empty());
  EXPECT_EQ(reader.next()->id, "full");
}

TEST(FastaReaderTest, GiStyleHeader) {
  std::istringstream input(">gi|3123744|dbj|AB013447.1|AB013447 Perilla\nTTGG\n");
  FastaReader reader(input);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->id, "gi|3123744|dbj|AB013447.1|AB013447");
  EXPECT_EQ(record->description, "Perilla");
}

TEST(FastaWriterTest, WrapsLines) {
  std::ostringstream output;
  FastaWriter writer(output, 4);
  writer.write(Sequence{"x", "", "ACGTACGTAC"});
  EXPECT_EQ(output.str(), ">x\nACGT\nACGT\nAC\n");
}

TEST(FastaWriterTest, IncludesDescription) {
  std::ostringstream output;
  FastaWriter writer(output);
  writer.write(Sequence{"id1", "some text", "AC"});
  EXPECT_EQ(output.str(), ">id1 some text\nAC\n");
}

TEST(FastaRoundTripTest, WriterThenReaderPreservesRecords) {
  s3asim::bio::GeneratorConfig config;
  config.seed = 7;
  config.length_histogram = s3asim::util::BoxHistogram{{{10, 500, 1.0}}};
  const auto original = s3asim::bio::generate_sequences(config, 20);

  std::ostringstream buffer;
  FastaWriter writer(buffer, 60);
  writer.write_all(original);
  std::istringstream input(buffer.str());
  FastaReader reader(input);
  const auto reread = reader.read_all();

  ASSERT_EQ(reread.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread[i].id, original[i].id);
    EXPECT_EQ(reread[i].data, original[i].data);
  }
}

TEST(FastaFileTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/s3asim_fasta_test.fa";
  const std::vector<Sequence> sequences{{"a", "d1", "ACGT"}, {"b", "", "TTTT"}};
  s3asim::bio::write_fasta_file(path, sequences);
  const auto reread = s3asim::bio::read_fasta_file(path);
  ASSERT_EQ(reread.size(), 2u);
  EXPECT_EQ(reread[1].data, "TTTT");
  std::remove(path.c_str());
}

TEST(FastaFileTest, MissingFileThrows) {
  EXPECT_THROW((void)s3asim::bio::read_fasta_file("/no/such/file.fa"),
               std::runtime_error);
}

}  // namespace
