/// Tests for sim::Mailbox — the lock-free MPSC staging queue cross-LP
/// messages travel through (sim/mailbox.hpp).  The concurrency tests hammer
/// it from many producer threads; run under TSan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/mailbox.hpp"

namespace {

using s3asim::sim::Mailbox;

TEST(MailboxTest, StartsEmpty) {
  Mailbox<int> box;
  EXPECT_TRUE(box.empty());
  std::vector<int> out;
  EXPECT_EQ(box.drain(out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(MailboxTest, DrainReturnsEverythingPushed) {
  Mailbox<int> box;
  box.push(1);
  box.push(2);
  box.push(3);
  EXPECT_FALSE(box.empty());
  std::vector<int> out;
  EXPECT_EQ(box.drain(out), 3u);
  EXPECT_TRUE(box.empty());
  // Single-producer drain yields reverse push order (Treiber stack); the
  // engine sorts by the (time, lp, seq) merge key, so order here is an
  // implementation detail — the contract is multiset equality.
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(MailboxTest, DrainAppendsToExistingVector) {
  Mailbox<int> box;
  box.push(7);
  std::vector<int> out{5, 6};
  EXPECT_EQ(box.drain(out), 1u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 6);
  EXPECT_EQ(out[2], 7);
}

TEST(MailboxTest, ReusableAfterDrain) {
  Mailbox<int> box;
  box.push(1);
  std::vector<int> out;
  box.drain(out);
  box.push(2);
  out.clear();
  EXPECT_EQ(box.drain(out), 1u);
  EXPECT_EQ(out[0], 2);
}

TEST(MailboxTest, DestructorFreesUndrainedNodes) {
  // No assertion beyond "does not leak/crash" (ASan/LSan-backed builds
  // make this meaningful).
  Mailbox<std::vector<int>> box;
  box.push(std::vector<int>(100, 42));
  box.push(std::vector<int>(100, 43));
}

TEST(MailboxTest, ConcurrentProducersLoseNothing) {
  // The real usage shape: many worker threads (source LPs) push during a
  // window; the coordinator drains at the barrier.
  constexpr std::uint32_t kProducers = 8;
  constexpr std::uint32_t kPerProducer = 2000;
  Mailbox<std::uint32_t> box;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i)
        box.push(p * kPerProducer + i);
    });
  }
  for (auto& thread : producers) thread.join();

  std::vector<std::uint32_t> out;
  EXPECT_EQ(box.drain(out), kProducers * kPerProducer);
  EXPECT_TRUE(box.empty());
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), kProducers * kPerProducer);
  for (std::uint32_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], i) << "lost or duplicated element";
}

TEST(MailboxTest, ConcurrentPushWhileDraining) {
  // Drains may interleave with pushes (the engine only drains at barriers,
  // but the structure itself must stay linearizable either way).
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 5000;
  Mailbox<std::uint32_t> box;
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i)
        box.push(p * kPerProducer + i);
    });
  }
  std::vector<std::uint32_t> out;
  while (out.size() < kProducers * kPerProducer) box.drain(out);
  for (auto& thread : producers) thread.join();
  box.drain(out);

  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), kProducers * kPerProducer);
  for (std::uint32_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], i) << "lost or duplicated element";
}

}  // namespace
