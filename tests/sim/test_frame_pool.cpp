#include "sim/frame_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace {

using namespace s3asim::sim;

TEST(FramePoolTest, ReusesFreedBlocksOfTheSameClass) {
  FramePool pool;
  void* first = pool.allocate(100);
  EXPECT_EQ(pool.live(), 1u);
  pool.deallocate(first, 100);
  EXPECT_EQ(pool.live(), 0u);
  // Any size in the same 64-byte class reuses the block.
  void* second = pool.allocate(128);
  EXPECT_EQ(second, first);
  EXPECT_EQ(pool.reused(), 1u);
  pool.deallocate(second, 128);
}

TEST(FramePoolTest, DifferentClassesDoNotShareBlocks) {
  FramePool pool;
  void* small = pool.allocate(64);
  pool.deallocate(small, 64);
  void* large = pool.allocate(1024);
  EXPECT_NE(large, small);
  EXPECT_EQ(pool.reused(), 0u);
  pool.deallocate(large, 1024);
}

TEST(FramePoolTest, OversizeRequestsFallThroughToOperatorNew) {
  FramePool pool;
  void* huge = pool.allocate(FramePool::kMaxPooled + 1);
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(pool.oversize_allocs(), 1u);
  EXPECT_EQ(pool.live(), 0u);  // oversize blocks are not pool-tracked
  std::memset(huge, 0xab, FramePool::kMaxPooled + 1);  // must be writable
  pool.deallocate(huge, FramePool::kMaxPooled + 1);
  EXPECT_EQ(pool.slab_bytes(), 0u);  // never touched a slab
}

TEST(FramePoolTest, BlocksKeepDefaultNewAlignment) {
  FramePool pool;
  std::vector<std::pair<void*, std::size_t>> blocks;
  for (std::size_t size : {1u, 63u, 64u, 65u, 200u, 4096u}) {
    void* ptr = pool.allocate(size);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) %
                  __STDCPP_DEFAULT_NEW_ALIGNMENT__,
              0u)
        << "size " << size;
    blocks.emplace_back(ptr, size);
  }
  for (auto [ptr, size] : blocks) pool.deallocate(ptr, size);
  EXPECT_EQ(pool.live(), 0u);
}

Task<int> pooled_child(Scheduler& sched, int depth) {
  if (depth == 0) {
    co_await sched.delay(1);
    co_return 1;
  }
  co_return 1 + co_await pooled_child(sched, depth - 1);
}

Process pooled_root(Scheduler& sched, int& result) {
  result = co_await pooled_child(sched, 16);
}

TEST(FramePoolTest, CoroutineFramesRoundTripThroughThePool) {
  // Run the same coroutine shape twice: the second run must be served from
  // free lists (frame reuse), and all frames must be returned when the
  // scheduler finishes.
  FramePool& pool = FramePool::local();
  const std::uint64_t live_before = pool.live();

  int result = 0;
  {
    Scheduler sched;
    sched.spawn(pooled_root(sched, result));
    sched.run();
  }
  EXPECT_EQ(result, 17);
  EXPECT_EQ(pool.live(), live_before);  // every frame freed

  const std::uint64_t reused_before = pool.reused();
  {
    Scheduler sched;
    sched.spawn(pooled_root(sched, result));
    sched.run();
  }
  EXPECT_EQ(pool.live(), live_before);
  EXPECT_GT(pool.reused(), reused_before);  // second run hit the free lists
}

TEST(FramePoolScopeTest, ScopeReroutesLocalToTheInstalledPool) {
  FramePool& thread_default = FramePool::local();
  FramePool lp_pool;
  {
    FramePool::Scope scope(lp_pool);
    EXPECT_EQ(&FramePool::local(), &lp_pool);
    void* block = FramePool::local().allocate(64);
    EXPECT_EQ(lp_pool.live(), 1u);
    EXPECT_EQ(thread_default.live(), 0u);
    FramePool::local().deallocate(block, 64);
  }
  EXPECT_EQ(&FramePool::local(), &thread_default);
  EXPECT_EQ(lp_pool.live(), 0u);
}

TEST(FramePoolScopeTest, ScopesNestAndRestoreInOrder) {
  FramePool& thread_default = FramePool::local();
  FramePool outer_pool;
  FramePool inner_pool;
  {
    FramePool::Scope outer(outer_pool);
    EXPECT_EQ(&FramePool::local(), &outer_pool);
    {
      FramePool::Scope inner(inner_pool);
      EXPECT_EQ(&FramePool::local(), &inner_pool);
    }
    EXPECT_EQ(&FramePool::local(), &outer_pool);
  }
  EXPECT_EQ(&FramePool::local(), &thread_default);
}

TEST(FramePoolScopeTest, ScopeIsThreadLocalNotGlobal) {
  // The LP-migration property: a scope installed on one thread must not
  // redirect allocations made by another.
  FramePool lp_pool;
  FramePool::Scope scope(lp_pool);
  FramePool* seen_on_thread = nullptr;
  std::thread observer(
      [&seen_on_thread] { seen_on_thread = &FramePool::local(); });
  observer.join();
  EXPECT_NE(seen_on_thread, &lp_pool);
  EXPECT_NE(seen_on_thread, &FramePool::local());
}

TEST(FramePoolScopeTest, CoroutineFramesFollowTheInstalledPool) {
  // The engine's usage: frames allocated while an LP's pool is installed
  // are freed into that same pool even if completion happens under the
  // same scope later — allocation and release balance within the pool.
  FramePool lp_pool;
  int result = 0;
  {
    FramePool::Scope scope(lp_pool);
    Scheduler sched;
    sched.spawn(pooled_root(sched, result));
    sched.run();
  }
  EXPECT_EQ(result, 17);
  EXPECT_EQ(lp_pool.live(), 0u);
  EXPECT_GT(lp_pool.slab_bytes(), 0u);  // the frames really came from it
}

}  // namespace
