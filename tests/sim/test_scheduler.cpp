#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace {

using namespace s3asim::sim;

Process record_after(Scheduler& sched, Time delay_ns, std::vector<Time>& log) {
  co_await sched.delay(delay_ns);
  log.push_back(sched.now());
}

TEST(SchedulerTest, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0);
  EXPECT_FALSE(sched.has_pending());
}

TEST(SchedulerTest, DelayAdvancesTime) {
  Scheduler sched;
  std::vector<Time> log;
  sched.spawn(record_after(sched, seconds(1.5), log));
  sched.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], seconds(1.5));
  EXPECT_EQ(sched.now(), seconds(1.5));
}

TEST(SchedulerTest, EventsFireInTimeOrder) {
  Scheduler sched;
  std::vector<Time> log;
  sched.spawn(record_after(sched, 300, log));
  sched.spawn(record_after(sched, 100, log));
  sched.spawn(record_after(sched, 200, log));
  sched.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log, (std::vector<Time>{100, 200, 300}));
}

TEST(SchedulerTest, SimultaneousEventsAreFifo) {
  Scheduler sched;
  std::vector<int> order;
  auto tagged = [](Scheduler& s, int tag, std::vector<int>& log) -> Process {
    co_await s.delay(50);
    log.push_back(tag);
  };
  for (int i = 0; i < 5; ++i) sched.spawn(tagged(sched, i, order));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, ZeroDelayDoesNotSuspend) {
  Scheduler sched;
  std::vector<Time> log;
  sched.spawn(record_after(sched, 0, log));
  sched.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 0);
}

TEST(SchedulerTest, ProcessAccounting) {
  Scheduler sched;
  std::vector<Time> log;
  sched.spawn(record_after(sched, 10, log));
  sched.spawn(record_after(sched, 20, log));
  EXPECT_EQ(sched.live_processes(), 2u);
  sched.run();
  EXPECT_EQ(sched.live_processes(), 0u);
  EXPECT_EQ(sched.finished_processes(), 2u);
}

TEST(SchedulerTest, RunReturnsResumptionCount) {
  Scheduler sched;
  std::vector<Time> log;
  sched.spawn(record_after(sched, 10, log));
  EXPECT_GE(sched.run(), 1u);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler sched;
  std::vector<Time> log;
  sched.spawn(record_after(sched, 100, log));
  sched.spawn(record_after(sched, 5'000, log));
  sched.run_until(1'000);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(sched.now(), 1'000);
  EXPECT_TRUE(sched.has_pending());
  sched.run();
  EXPECT_EQ(log.size(), 2u);
}

TEST(SchedulerTest, ExceptionInProcessPropagatesFromRun) {
  Scheduler sched;
  auto thrower = [](Scheduler& s) -> Process {
    co_await s.delay(5);
    throw std::runtime_error("boom");
  };
  sched.spawn(thrower(sched));
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(SchedulerTest, SequentialDelaysAccumulate) {
  Scheduler sched;
  Time finished = -1;
  auto proc = [](Scheduler& s, Time& out) -> Process {
    co_await s.delay(100);
    co_await s.delay(200);
    co_await s.delay(300);
    out = s.now();
  };
  sched.spawn(proc(sched, finished));
  sched.run();
  EXPECT_EQ(finished, 600);
}

TEST(SchedulerTest, YieldPreservesRelativeOrder) {
  Scheduler sched;
  std::vector<int> order;
  auto yielding = [](Scheduler& s, std::vector<int>& log) -> Process {
    log.push_back(1);
    co_await s.yield();
    log.push_back(3);
  };
  auto plain = [](Scheduler& s, std::vector<int>& log) -> Process {
    co_await s.delay(0);
    log.push_back(2);
  };
  sched.spawn(yielding(sched, order));
  sched.spawn(plain(sched, order));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_EQ(milliseconds(1.5), 1'500'000);
  EXPECT_EQ(microseconds(2.0), 2'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7.0)), 7.0);
}

TEST(TimeTest, TransferTime) {
  // 1 MiB at 1 MiB/s = 1 s.
  EXPECT_EQ(transfer_time(1 << 20, static_cast<double>(1 << 20)), seconds(1.0));
  EXPECT_EQ(transfer_time(0, 100.0), 0);
  EXPECT_EQ(transfer_time(100, 0.0), 0);
}

}  // namespace
