#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace {

using namespace s3asim::sim;

Task<int> answer(Scheduler& sched) {
  co_await sched.delay(10);
  co_return 42;
}

TEST(TaskTest, ChildTaskReturnsValue) {
  Scheduler sched;
  int got = 0;
  auto parent = [](Scheduler& s, int& out) -> Process {
    out = co_await answer(s);
  };
  sched.spawn(parent(sched, got));
  sched.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(sched.now(), 10);
}

TEST(TaskTest, VoidTaskCompletes) {
  Scheduler sched;
  bool done = false;
  auto child = [](Scheduler& s) -> Task<void> { co_await s.delay(5); };
  auto parent = [&child](Scheduler& s, bool& flag) -> Process {
    co_await child(s);
    flag = true;
  };
  sched.spawn(parent(sched, done));
  sched.run();
  EXPECT_TRUE(done);
}

TEST(TaskTest, NestedTasksComposeDelays) {
  Scheduler sched;
  Time finish = -1;
  auto inner = [](Scheduler& s) -> Task<int> {
    co_await s.delay(100);
    co_return 1;
  };
  auto middle = [&inner](Scheduler& s) -> Task<int> {
    const int a = co_await inner(s);
    co_await s.delay(50);
    co_return a + 1;
  };
  auto parent = [&middle](Scheduler& s, Time& out) -> Process {
    const int v = co_await middle(s);
    EXPECT_EQ(v, 2);
    out = s.now();
  };
  sched.spawn(parent(sched, finish));
  sched.run();
  EXPECT_EQ(finish, 150);
}

TEST(TaskTest, DeepRecursionIsStackSafe) {
  // 20k-deep chain of child tasks: symmetric transfer must keep the native
  // stack flat.
  Scheduler sched;
  std::function<Task<int>(Scheduler&, int)> chain =
      [&chain](Scheduler& s, int depth) -> Task<int> {
    if (depth == 0) co_return 0;
    const int below = co_await chain(s, depth - 1);
    co_return below + 1;
  };
  int result = -1;
  auto parent = [&chain](Scheduler& s, int& out) -> Process {
    out = co_await chain(s, 20'000);
  };
  sched.spawn(parent(sched, result));
  sched.run();
  EXPECT_EQ(result, 20'000);
}

TEST(TaskTest, ExceptionPropagatesToAwaiter) {
  Scheduler sched;
  auto failing = [](Scheduler& s) -> Task<int> {
    co_await s.delay(1);
    throw std::runtime_error("child failed");
  };
  bool caught = false;
  auto parent = [&failing](Scheduler& s, bool& flag) -> Process {
    try {
      (void)co_await failing(s);
    } catch (const std::runtime_error& e) {
      flag = std::string(e.what()) == "child failed";
    }
  };
  sched.spawn(parent(sched, caught));
  sched.run();
  EXPECT_TRUE(caught);
}

TEST(TaskTest, UncaughtChildExceptionEscapesViaProcess) {
  Scheduler sched;
  auto failing = [](Scheduler& s) -> Task<void> {
    co_await s.delay(1);
    throw std::logic_error("unhandled");
  };
  auto parent = [&failing](Scheduler& s) -> Process { co_await failing(s); };
  sched.spawn(parent(sched));
  EXPECT_THROW(sched.run(), std::logic_error);
}

TEST(TaskTest, MoveOnlyResultType) {
  Scheduler sched;
  auto produce = [](Scheduler& s) -> Task<std::unique_ptr<int>> {
    co_await s.delay(1);
    co_return std::make_unique<int>(7);
  };
  int got = 0;
  auto parent = [&produce](Scheduler& s, int& out) -> Process {
    auto p = co_await produce(s);
    out = *p;
  };
  sched.spawn(parent(sched, got));
  sched.run();
  EXPECT_EQ(got, 7);
}

TEST(TaskTest, ManyParallelProcessesInterleave) {
  Scheduler sched;
  std::vector<int> done;
  auto worker = [](Scheduler& s, int id, std::vector<int>& log) -> Process {
    co_await s.delay(100 - id);  // later ids finish earlier
    log.push_back(id);
  };
  for (int i = 0; i < 10; ++i) sched.spawn(worker(sched, i, done));
  sched.run();
  ASSERT_EQ(done.size(), 10u);
  EXPECT_EQ(done.front(), 9);
  EXPECT_EQ(done.back(), 0);
}

TEST(TaskTest, UnspawnedProcessDoesNotLeakOrRun) {
  Scheduler sched;
  bool ran = false;
  {
    auto proc = [](Scheduler& s, bool& flag) -> Process {
      flag = true;
      co_await s.delay(1);
    }(sched, ran);
    // destroyed without spawn
  }
  sched.run();
  EXPECT_FALSE(ran);
}

}  // namespace
