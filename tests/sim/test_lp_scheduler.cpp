/// Tests for the conservative parallel engine (sim/lp_scheduler.hpp):
/// lookahead validation, deterministic (time, lp, seq) delivery, and the
/// headline contract — bit-identical results for any thread count.  The
/// multi-LP tests run the same model at 1/2/4/8 threads and compare full
/// delivery logs; CI additionally runs this binary under TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/lp_scheduler.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"

namespace {

using s3asim::sim::Lp;
using s3asim::sim::LpScheduler;
using s3asim::sim::Process;
using s3asim::sim::Scheduler;
using s3asim::sim::Time;

constexpr Time kLookahead = 100;  // ns; tiny windows stress the machinery

/// One delivery observed by an LP: (delivery time, source LP, payload).
struct Delivery {
  Time at = 0;
  std::uint32_t src = 0;
  std::uint64_t payload = 0;
  bool operator==(const Delivery&) const = default;
};

/// Test fixture state: per-LP delivery logs filled in by post-apply
/// lambdas (applies run single-threaded at the barrier, in the engine's
/// deterministic merge order).
struct Net {
  LpScheduler* engine = nullptr;
  std::vector<Lp*> lps;
  std::vector<std::vector<Delivery>> log;

  void post(std::uint32_t src, std::uint32_t dst, Time at,
            std::uint64_t payload) {
    engine->post(*lps[src], dst, at,
                 [this, src, dst, at, payload](Scheduler&) {
                   log[dst].push_back({at, src, payload});
                 });
  }
};

TEST(LpSchedulerTest, ZeroLookaheadRejected) {
  try {
    LpScheduler engine({/*lookahead=*/0, /*threads=*/1});
    FAIL() << "zero lookahead must be rejected";
  } catch (const std::exception& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("positive lookahead"), std::string::npos) << what;
    EXPECT_NE(what.find("--engine=serial"), std::string::npos) << what;
  }
}

TEST(LpSchedulerTest, NegativeLookaheadRejected) {
  EXPECT_THROW(LpScheduler({/*lookahead=*/-5, /*threads=*/2}),
               std::exception);
}

TEST(LpSchedulerTest, PostToUnknownLpRejected) {
  LpScheduler engine({kLookahead, 1});
  Lp& lp = engine.add_lp();
  EXPECT_THROW(engine.post(lp, /*dst=*/7, /*at=*/kLookahead, [](Scheduler&) {}),
               std::exception);
}

namespace violation {
Process violate(Net& net) {
  Scheduler& sched = net.lps[0]->scheduler();
  co_await sched.delay(10);
  // Delivery inside the current window: the lookahead contract is broken
  // and the engine must say so, not corrupt the order.
  net.post(0, 1, sched.now(), /*payload=*/1);
}
}  // namespace violation

TEST(LpSchedulerTest, IntraWindowPostRejectedWithActionableError) {
  LpScheduler engine({kLookahead, 1});
  Net net{&engine, {&engine.add_lp(), &engine.add_lp()}, {}};
  net.log.resize(2);
  net.lps[0]->spawn([&] { return violation::violate(net); });
  try {
    (void)engine.run();
    FAIL() << "intra-window post must be rejected";
  } catch (const std::exception& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("violates the lookahead"), std::string::npos) << what;
    EXPECT_NE(what.find("--engine=serial"), std::string::npos) << what;
  }
}

namespace merge {
/// Stages posts for LP 0 from two sources with deliberately shuffled
/// timestamps before the run; the first barrier must deliver them in
/// (time, source LP, source sequence) order.
Process noop(Net& net) { co_await net.lps[1]->scheduler().delay(1); }
}  // namespace merge

TEST(LpSchedulerTest, DeliveryFollowsTimeLpSeqOrder) {
  LpScheduler engine({kLookahead, 1});
  Net net{&engine, {&engine.add_lp(), &engine.add_lp(), &engine.add_lp()}, {}};
  net.log.resize(3);
  // Source LP 1 stages (t=500, seq 0), (t=300, seq 1); source LP 2 stages
  // (t=300, seq 0).  Expected delivery: (300, lp1), (300, lp2)?  No —
  // the key is (time, src_lp, src_seq): (300,1,1), (300,2,0), (500,1,0).
  net.post(1, 0, 500, 10);
  net.post(1, 0, 300, 11);
  net.post(2, 0, 300, 20);
  net.lps[1]->spawn([&] { return merge::noop(net); });
  (void)engine.run();
  ASSERT_EQ(net.log[0].size(), 3u);
  EXPECT_EQ(net.log[0][0], (Delivery{300, 1, 11}));
  EXPECT_EQ(net.log[0][1], (Delivery{300, 2, 20}));
  EXPECT_EQ(net.log[0][2], (Delivery{500, 1, 10}));
}

namespace pingpong {
struct Court {
  Net net;
  std::vector<std::deque<std::uint64_t>> inbox;
  std::vector<std::coroutine_handle<>> waiter;
  std::uint64_t rallies = 0;

  void serve(std::uint32_t src, std::uint32_t dst, std::uint64_t ball) {
    Scheduler& sched = net.lps[src]->scheduler();
    const Time at = sched.now() + kLookahead + 7;
    net.engine->post(*net.lps[src], dst, at,
                     [this, dst, ball, at](Scheduler& sched_dst) {
                       inbox[dst].push_back(ball);
                       if (waiter[dst])
                         sched_dst.schedule_at(
                             std::exchange(waiter[dst], nullptr), at);
                     });
  }

  struct Recv {
    Court& court;
    std::uint32_t self;
    [[nodiscard]] bool await_ready() const noexcept {
      return !court.inbox[self].empty();
    }
    void await_suspend(std::coroutine_handle<> handle) const noexcept {
      court.waiter[self] = handle;
    }
    [[nodiscard]] std::uint64_t await_resume() const {
      const std::uint64_t ball = court.inbox[self].front();
      court.inbox[self].pop_front();
      return ball;
    }
  };
};

Process player(Court& court, std::uint32_t self, std::uint32_t peer,
               bool serves_first) {
  if (serves_first) court.serve(self, peer, /*ball=*/1);
  for (;;) {
    const std::uint64_t ball = co_await Court::Recv{court, self};
    court.net.log[self].push_back(
        {court.net.lps[self]->scheduler().now(), peer, ball});
    ++court.rallies;
    // Ball 61 is the match point: its receiver stops without returning it,
    // so both players run to completion (no parked frames to leak).
    if (ball <= 60) court.serve(self, peer, ball + 1);
    if (ball >= 60) break;
  }
}

struct Outcome {
  std::vector<std::vector<Delivery>> log;
  std::uint64_t rallies = 0;
  std::uint64_t windows = 0;
  std::uint64_t cross = 0;
  std::size_t events = 0;
};

Outcome run(unsigned threads) {
  LpScheduler engine({kLookahead, threads});
  Court court;
  court.net.engine = &engine;
  court.net.lps = {&engine.add_lp(), &engine.add_lp()};
  court.net.log.resize(2);
  court.inbox.resize(2);
  court.waiter.resize(2);
  court.net.lps[0]->spawn([&] { return player(court, 0, 1, true); });
  court.net.lps[1]->spawn([&] { return player(court, 1, 0, false); });
  Outcome outcome;
  outcome.events = engine.run();
  outcome.log = court.net.log;
  outcome.rallies = court.rallies;
  outcome.windows = engine.windows_executed();
  outcome.cross = engine.cross_posts();
  return outcome;
}
}  // namespace pingpong

TEST(LpSchedulerTest, PingPongIsDeterministicAcrossThreadCounts) {
  const auto baseline = pingpong::run(1);
  EXPECT_EQ(baseline.rallies, 61u);
  EXPECT_GT(baseline.windows, 0u);
  EXPECT_EQ(baseline.cross, 61u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto outcome = pingpong::run(threads);
    EXPECT_EQ(outcome.log, baseline.log) << threads << " threads";
    EXPECT_EQ(outcome.rallies, baseline.rallies) << threads << " threads";
    EXPECT_EQ(outcome.windows, baseline.windows) << threads << " threads";
    EXPECT_EQ(outcome.cross, baseline.cross) << threads << " threads";
    EXPECT_EQ(outcome.events, baseline.events) << threads << " threads";
  }
}

namespace torture {
/// Property/torture model: every LP runs a chatterbox that takes seeded
/// pseudo-random delays and posts to seeded pseudo-random peers.  All
/// draws derive from (seed, lp) only, never from host state, so the
/// simulated behavior is a pure function of the config — what the
/// cross-thread identity assertions below rely on.
Process chatterbox(Net& net, std::uint32_t self, std::uint64_t seed,
                   std::uint32_t messages) {
  s3asim::util::Xoshiro256 rng(s3asim::util::hash_combine(seed, self));
  Scheduler& sched = net.lps[self]->scheduler();
  for (std::uint32_t i = 0; i < messages; ++i) {
    co_await sched.delay(1 + static_cast<Time>(rng() % 400));
    const auto dst = static_cast<std::uint32_t>(rng() % net.lps.size());
    // Any slack >= 0 on top of now + lookahead is always legal: the window
    // never extends past (earliest event + lookahead).
    const Time at = sched.now() + kLookahead + static_cast<Time>(rng() % 300);
    net.post(self, dst, at, (static_cast<std::uint64_t>(self) << 32) | i);
  }
}

struct Outcome {
  std::vector<std::vector<Delivery>> log;
  std::size_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t activations = 0;
  std::uint64_t cross = 0;
  std::vector<Time> now;
};

Outcome run(unsigned threads, std::uint32_t lp_count, std::uint32_t messages) {
  LpScheduler engine({kLookahead, threads});
  Net net{&engine, {}, {}};
  for (std::uint32_t i = 0; i < lp_count; ++i)
    net.lps.push_back(&engine.add_lp());
  net.log.resize(lp_count);
  for (std::uint32_t i = 0; i < lp_count; ++i)
    net.lps[i]->spawn([&, i] { return chatterbox(net, i, 0xfeed, messages); });
  Outcome outcome;
  outcome.events = engine.run();
  outcome.log = std::move(net.log);
  outcome.windows = engine.windows_executed();
  outcome.activations = engine.lp_activations();
  outcome.cross = engine.cross_posts();
  for (Lp* lp : net.lps) outcome.now.push_back(lp->scheduler().now());
  return outcome;
}
}  // namespace torture

TEST(LpSchedulerTest, TortureManyLpsIdenticalAcrossThreadCounts) {
  constexpr std::uint32_t kLps = 32;
  constexpr std::uint32_t kMessages = 40;
  const auto baseline = torture::run(1, kLps, kMessages);
  // Every message is delivered exactly once.
  std::size_t delivered = 0;
  for (const auto& log : baseline.log) delivered += log.size();
  EXPECT_EQ(delivered, std::size_t{kLps} * kMessages);
  EXPECT_EQ(baseline.cross, std::uint64_t{kLps} * kMessages);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto outcome = torture::run(threads, kLps, kMessages);
    EXPECT_EQ(outcome.log, baseline.log) << threads << " threads";
    EXPECT_EQ(outcome.events, baseline.events) << threads << " threads";
    EXPECT_EQ(outcome.windows, baseline.windows) << threads << " threads";
    EXPECT_EQ(outcome.activations, baseline.activations)
        << threads << " threads";
    EXPECT_EQ(outcome.now, baseline.now) << threads << " threads";
  }
}

TEST(LpSchedulerTest, PerLpDeliveryTimesNeverRegressWithinABarrierBatch) {
  // Retirement-order property: concatenating each LP's log, entries from
  // one barrier batch are (time, src, seq)-sorted, and an LP's scheduler
  // clock never runs ahead of a delivery it has yet to observe.
  const auto outcome = torture::run(4, 16, 30);
  for (std::size_t lp = 0; lp < outcome.log.size(); ++lp) {
    const auto& log = outcome.log[lp];
    for (std::size_t i = 0; i + 1 < log.size(); ++i) {
      if (log[i].at == log[i + 1].at && log[i].src == log[i + 1].src) {
        const auto seq_a = log[i].payload & 0xffffffff;
        const auto seq_b = log[i + 1].payload & 0xffffffff;
        EXPECT_LT(seq_a, seq_b) << "same-instant same-source inversion";
      }
    }
  }
}

namespace singlelp {
Process looper(Scheduler& sched, std::uint64_t* acc) {
  s3asim::util::Xoshiro256 rng(123);
  for (int i = 0; i < 200; ++i) {
    co_await sched.delay(static_cast<Time>(rng() % 5000));
    *acc = s3asim::util::hash_combine(*acc, static_cast<std::uint64_t>(i));
  }
}
}  // namespace singlelp

TEST(LpSchedulerTest, SingleLpWindowedRunMatchesSerialScheduler) {
  // The adopted-single-LP configuration (--engine=parallel on the full
  // model): windowed execution of one scheduler must retire exactly the
  // serial event sequence.
  std::uint64_t serial_acc = 0;
  Scheduler serial;
  serial.spawn(singlelp::looper(serial, &serial_acc));
  const std::size_t serial_events = serial.run();
  const Time serial_now = serial.now();

  std::uint64_t windowed_acc = 0;
  Scheduler windowed;
  windowed.spawn(singlelp::looper(windowed, &windowed_acc));
  LpScheduler engine({kLookahead, 4});
  Lp& lp = engine.adopt_lp(windowed);
  EXPECT_TRUE(lp.pinned());
  const std::size_t windowed_events = engine.run();

  EXPECT_EQ(windowed_events, serial_events);
  EXPECT_EQ(windowed.now(), serial_now);
  EXPECT_EQ(windowed_acc, serial_acc);
  EXPECT_GT(engine.windows_executed(), 0u);
}

TEST(LpSchedulerTest, RunIsIdempotentAtQuiescence) {
  LpScheduler engine({kLookahead, 2});
  (void)engine.add_lp();
  EXPECT_EQ(engine.run(), 0u);  // nothing spawned: immediately quiescent
  EXPECT_EQ(engine.windows_executed(), 0u);
}

}  // namespace
