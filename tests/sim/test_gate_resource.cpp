#include <gtest/gtest.h>

#include <vector>

#include "sim/gate.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace {

using namespace s3asim::sim;

TEST(GateTest, WaitersReleaseOnOpen) {
  Scheduler sched;
  Gate gate(sched);
  std::vector<Time> woke;
  auto waiter = [](Scheduler& s, Gate& g, std::vector<Time>& log) -> Process {
    co_await g.wait();
    log.push_back(s.now());
  };
  auto opener = [](Scheduler& s, Gate& g) -> Process {
    co_await s.delay(500);
    g.open();
  };
  sched.spawn(waiter(sched, gate, woke));
  sched.spawn(waiter(sched, gate, woke));
  sched.spawn(opener(sched, gate));
  sched.run();
  ASSERT_EQ(woke.size(), 2u);
  EXPECT_EQ(woke[0], 500);
  EXPECT_EQ(woke[1], 500);
}

TEST(GateTest, WaitAfterOpenDoesNotBlock) {
  Scheduler sched;
  Gate gate(sched);
  gate.open();
  Time woke = -1;
  auto waiter = [](Scheduler& s, Gate& g, Time& out) -> Process {
    co_await s.delay(100);
    co_await g.wait();
    out = s.now();
  };
  sched.spawn(waiter(sched, gate, woke));
  sched.run();
  EXPECT_EQ(woke, 100);
}

TEST(GateTest, OpenIsIdempotent) {
  Scheduler sched;
  Gate gate(sched);
  gate.open();
  gate.open();
  EXPECT_TRUE(gate.is_open());
}

TEST(ResourceTest, CapacityOneSerializes) {
  Scheduler sched;
  Resource res(sched);
  std::vector<Time> starts;
  auto user = [](Scheduler& s, Resource& r, std::vector<Time>& log) -> Process {
    co_await r.acquire();
    log.push_back(s.now());
    co_await s.delay(100);
    r.release();
  };
  for (int i = 0; i < 3; ++i) sched.spawn(user(sched, res, starts));
  sched.run();
  EXPECT_EQ(starts, (std::vector<Time>{0, 100, 200}));
}

TEST(ResourceTest, CapacityTwoAllowsPairs) {
  Scheduler sched;
  Resource res(sched, 2);
  std::vector<Time> starts;
  auto user = [](Scheduler& s, Resource& r, std::vector<Time>& log) -> Process {
    co_await r.acquire();
    log.push_back(s.now());
    co_await s.delay(100);
    r.release();
  };
  for (int i = 0; i < 4; ++i) sched.spawn(user(sched, res, starts));
  sched.run();
  EXPECT_EQ(starts, (std::vector<Time>{0, 0, 100, 100}));
}

TEST(ResourceTest, FifoGrantOrder) {
  Scheduler sched;
  Resource res(sched);
  std::vector<int> grant_order;
  auto user = [](Scheduler& s, Resource& r, int id, Time arrive,
                 std::vector<int>& log) -> Process {
    co_await s.delay(arrive);
    co_await r.acquire();
    log.push_back(id);
    co_await s.delay(50);
    r.release();
  };
  sched.spawn(user(sched, res, 0, 0, grant_order));
  sched.spawn(user(sched, res, 1, 10, grant_order));
  sched.spawn(user(sched, res, 2, 5, grant_order));
  sched.run();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 2, 1}));
}

TEST(ResourceTest, ReleaseWithoutAcquireThrows) {
  Scheduler sched;
  Resource res(sched);
  EXPECT_THROW(res.release(), std::logic_error);
}

TEST(ResourceTest, ZeroCapacityRejected) {
  Scheduler sched;
  EXPECT_THROW(Resource(sched, 0), std::invalid_argument);
}

TEST(ResourceTest, HoldReleasesOnScopeExit) {
  Scheduler sched;
  Resource res(sched);
  std::vector<Time> starts;
  auto user = [](Scheduler& s, Resource& r, std::vector<Time>& log) -> Process {
    co_await r.acquire();
    {
      ResourceHold hold(r);
      log.push_back(s.now());
      co_await s.delay(100);
    }
    co_await s.delay(1000);  // after release: must not block the next user
  };
  sched.spawn(user(sched, res, starts));
  sched.spawn(user(sched, res, starts));
  sched.run();
  EXPECT_EQ(starts, (std::vector<Time>{0, 100}));
}

TEST(ResourceTest, QueueLengthReflectsWaiters) {
  Scheduler sched;
  Resource res(sched);
  auto holder = [](Scheduler& s, Resource& r) -> Process {
    co_await r.acquire();
    co_await s.delay(1000);
    r.release();
  };
  auto waiter = [](Scheduler& s, Resource& r) -> Process {
    co_await s.delay(1);
    co_await r.acquire();
    r.release();
    (void)s;
  };
  sched.spawn(holder(sched, res));
  sched.spawn(waiter(sched, res));
  sched.run_until(500);
  EXPECT_EQ(res.in_use(), 1u);
  EXPECT_EQ(res.queue_length(), 1u);
  sched.run();
  EXPECT_EQ(res.in_use(), 0u);
}

}  // namespace
