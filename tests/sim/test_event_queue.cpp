#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace {

using namespace s3asim::sim;

/// Reference model: the exact total order the old binary heap dispatched —
/// stable (insertion) order within a timestamp, global (at, seq) order
/// across timestamps.
struct RefEntry {
  Time at;
  std::uint64_t seq;
};

/// Drains `queue` fully and checks the pop sequence equals `expected`
/// sorted by (at, seq).
void expect_fifo_order(EventQueue& queue, std::vector<RefEntry> expected) {
  std::sort(expected.begin(), expected.end(),
            [](const RefEntry& a, const RefEntry& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.seq < b.seq;
            });
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FALSE(queue.empty()) << "queue drained early at " << i;
    const Event& event = queue.top();
    EXPECT_EQ(event.at, expected[i].at) << "at index " << i;
    EXPECT_EQ(event.seq, expected[i].seq) << "at index " << i;
    queue.pop();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, SameTickDispatchesInInsertionOrder) {
  EventQueue queue;
  std::vector<RefEntry> expected;
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    queue.push({Time{42}, seq, {}, kNoCancelSlot, 0});
    expected.push_back({Time{42}, seq});
  }
  expect_fifo_order(queue, std::move(expected));
}

TEST(EventQueueTest, MixedDeltasMatchHeapOrder) {
  // Deltas spanning every tier: 0 (same tick), <64 (level 0), mid wheels,
  // and beyond the 2^36-tick horizon (overflow heap).
  EventQueue queue;
  std::vector<RefEntry> expected;
  s3asim::util::Xoshiro256 rng(1234);
  const Time deltas[] = {0,     1,      63,        64,          4095,
                         4096,  262143, 16777216,  EventQueue::kHorizon - 1,
                         EventQueue::kHorizon, EventQueue::kHorizon * 2};
  std::uint64_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    const Time at = static_cast<Time>(deltas[rng() % std::size(deltas)]);
    queue.push({at, seq, {}, kNoCancelSlot, 0});
    expected.push_back({at, seq});
    ++seq;
  }
  expect_fifo_order(queue, std::move(expected));
}

TEST(EventQueueTest, RandomInterleavedPushPopKeepsTotalOrder) {
  // Property test: interleave pushes (at >= current dispatch time, as the
  // scheduler guarantees) with pops and compare every popped event against
  // a stable-sorted reference.
  s3asim::util::Xoshiro256 rng(99);
  EventQueue queue;
  std::vector<RefEntry> reference;  // not yet popped
  Time now = 0;
  std::uint64_t seq = 0;
  std::uint64_t popped = 0;
  for (int round = 0; round < 20'000; ++round) {
    const bool push = queue.empty() || (rng() % 3) != 0;
    if (push) {
      Time delta = 0;
      switch (rng() % 5) {
        case 0: delta = 0; break;
        case 1: delta = static_cast<Time>(rng() % 64); break;
        case 2: delta = static_cast<Time>(rng() % 100'000); break;
        case 3: delta = static_cast<Time>(rng() % 10'000'000'000ULL); break;
        default:
          delta = static_cast<Time>(EventQueue::kHorizon +
                                    static_cast<Time>(rng() % 1'000'000));
      }
      queue.push({now + delta, seq, {}, kNoCancelSlot, 0});
      reference.push_back({now + delta, seq});
      ++seq;
    } else {
      auto best = reference.begin();
      for (auto it = reference.begin(); it != reference.end(); ++it)
        if (it->at < best->at || (it->at == best->at && it->seq < best->seq))
          best = it;
      const Event& event = queue.top();
      ASSERT_EQ(event.at, best->at) << "after " << popped << " pops";
      ASSERT_EQ(event.seq, best->seq) << "after " << popped << " pops";
      now = event.at;
      queue.pop();
      reference.erase(best);
      ++popped;
    }
  }
  // Drain the rest.
  std::vector<RefEntry> rest(reference.begin(), reference.end());
  expect_fifo_order(queue, std::move(rest));
}

TEST(EventQueueTest, FullRotationAliasAdvancesPastTheCursor) {
  // Regression: a delta at the top of a level's range, pushed while the
  // cursor sits inside a partial slot, lands a full wheel rotation ahead
  // and its slot index aliases the cursor's own.  The cascade used to
  // treat that slot's window as already reached and re-place the event
  // into the same slot forever (livelock).  One case per wheel level,
  // plus the top level spilling to overflow.
  for (int level = 1; level < EventQueue::kLevels; ++level) {
    EventQueue queue;
    queue.push({Time{1}, 0, {}, kNoCancelSlot, 0});
    (void)queue.top();
    queue.pop();  // cursor now mid-slot at every level
    const Time delta = (Time{1} << (EventQueue::kSlotBits * (level + 1))) - 1;
    queue.push({Time{1} + delta, 1, {}, kNoCancelSlot, 0});
    ASSERT_EQ(queue.top().at, Time{1} + delta) << "level " << level;
    queue.pop();
    EXPECT_TRUE(queue.empty());
  }
}

TEST(EventQueueTest, SizeTracksPushesAndPops) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.push({10, 0, {}, kNoCancelSlot, 0});
  queue.push({10, 1, {}, kNoCancelSlot, 0});
  EXPECT_EQ(queue.size(), 2u);
  queue.pop();
  EXPECT_EQ(queue.size(), 1u);
  queue.pop();
  EXPECT_TRUE(queue.empty());
}

// --- Scheduler-level determinism and cancellation ------------------------

Process record_at(Scheduler& sched, Time delay_ns, int id,
                  std::vector<std::pair<Time, int>>& log) {
  co_await sched.delay(delay_ns);
  log.emplace_back(sched.now(), id);
}

TEST(EventQueueTest, SchedulerFifoAmongSimultaneousEvents) {
  // Spawn order must be completion order for equal deadlines, including
  // deadlines that collide after different delay chains.
  Scheduler sched;
  std::vector<std::pair<Time, int>> log;
  for (int id = 0; id < 50; ++id) sched.spawn(record_at(sched, 1000, id, log));
  for (int id = 50; id < 100; ++id)
    sched.spawn(record_at(sched, 500, id, log));
  sched.run();
  ASSERT_EQ(log.size(), 100u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)],
              (std::pair<Time, int>{500, i + 50}));
    EXPECT_EQ(log[static_cast<std::size_t>(i) + 50],
              (std::pair<Time, int>{1000, i}));
  }
}

TEST(EventQueueTest, CancelledEntriesAreSkippedWithoutAdvancingTime) {
  // A waiter suspends on the timer (queueing a cancellable entry at the
  // deadline); cancelling leaves that entry stale in the queue.  Draining
  // must discard it without making the dead deadline the "current time".
  Scheduler sched;
  Timer timer(sched);
  std::vector<std::pair<Time, bool>> log;
  auto waiter = [](Scheduler& s, Timer& t,
                   std::vector<std::pair<Time, bool>>& out) -> Process {
    t.arm_in(seconds(100));
    const bool fired = co_await t.wait();
    out.emplace_back(s.now(), fired);
  };
  auto canceller = [](Scheduler& s, Timer& t) -> Process {
    co_await s.delay(10);
    t.cancel();
  };
  sched.spawn(waiter(sched, timer, log));
  sched.spawn(canceller(sched, timer));
  sched.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], (std::pair<Time, bool>{10, false}));
  EXPECT_EQ(sched.now(), 10);  // never visited the cancelled deadline
}

TEST(EventQueueTest, TimerRearmReusesItsCancelSlot) {
  // Satellite fix: a timer must not grow the token pool on every re-arm.
  Scheduler sched;
  auto proc = [](Scheduler& s) -> Process {
    Timer timer(s);
    for (int i = 0; i < 10'000; ++i) {
      timer.arm_in(seconds(1));
      timer.cancel();
    }
    co_await s.delay(1);
  };
  sched.spawn(proc(sched));
  sched.run();
  EXPECT_EQ(sched.cancel_slots_allocated(), 1u);
}

TEST(EventQueueTest, ManyTimersShareReleasedSlots) {
  // Destroyed timers return their slot to the free list; sequential timer
  // lifetimes should keep the pool at one slot.
  Scheduler sched;
  auto proc = [](Scheduler& s) -> Process {
    for (int i = 0; i < 100; ++i) {
      Timer timer(s);
      timer.arm_in(50);
      co_await timer.wait();
    }
  };
  sched.spawn(proc(sched));
  sched.run();
  EXPECT_EQ(sched.cancel_slots_allocated(), 1u);
}

TEST(EventQueueTest, RunUntilThenEarlierScheduleRebases) {
  // run_until scans the cursor ahead of the last dispatched event; a
  // subsequent spawn below the scanned position must still dispatch in
  // order (exercises EventQueue::rebase).
  Scheduler sched;
  std::vector<std::pair<Time, int>> log;
  sched.spawn(record_at(sched, seconds(10), 0, log));
  sched.run_until(seconds(2));
  EXPECT_EQ(sched.now(), seconds(2));
  sched.spawn(record_at(sched, seconds(1), 1, log));  // below the far event
  sched.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<Time, int>{seconds(3), 1}));
  EXPECT_EQ(log[1], (std::pair<Time, int>{seconds(10), 0}));
}

TEST(EventQueueTest, EventsProcessedCounterAdvances) {
  Scheduler sched;
  std::vector<std::pair<Time, int>> log;
  for (int id = 0; id < 5; ++id) sched.spawn(record_at(sched, 100, id, log));
  EXPECT_EQ(sched.events_processed(), 0u);
  sched.run();
  EXPECT_GE(sched.events_processed(), 5u);
}

}  // namespace
