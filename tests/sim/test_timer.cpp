#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace {

using namespace s3asim::sim;

TEST(TimerTest, FiresAtDeadline) {
  Scheduler sched;
  Timer timer(sched);
  Time fired_at = -1;
  bool fired = false;
  auto waiter = [](Scheduler& s, Timer& t, bool& flag, Time& at) -> Process {
    t.arm_at(250);
    flag = co_await t.wait();
    at = s.now();
  };
  sched.spawn(waiter(sched, timer, fired, fired_at));
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(fired_at, 250);
  EXPECT_FALSE(timer.armed());
}

TEST(TimerTest, CancelResumesWaiterWithoutAdvancingTime) {
  Scheduler sched;
  Timer timer(sched);
  Time resumed_at = -1;
  bool fired = true;
  auto waiter = [](Scheduler& s, Timer& t, bool& flag, Time& at) -> Process {
    t.arm_at(1'000'000);
    flag = co_await t.wait();
    at = s.now();
  };
  auto canceller = [](Scheduler& s, Timer& t) -> Process {
    co_await s.delay(40);
    t.cancel();
  };
  sched.spawn(waiter(sched, timer, fired, resumed_at));
  sched.spawn(canceller(sched, timer));
  sched.run();
  EXPECT_FALSE(fired);
  // The waiter resumes at the cancel instant, and crucially the discarded
  // deadline never becomes the "next event": the clock stays at 40.
  EXPECT_EQ(resumed_at, 40);
  EXPECT_EQ(sched.now(), 40);
}

TEST(TimerTest, WaitOnUnarmedTimerReturnsFalseImmediately) {
  Scheduler sched;
  Timer timer(sched);
  bool fired = true;
  auto waiter = [](Scheduler& s, Timer& t, bool& flag) -> Process {
    flag = co_await t.wait();
    EXPECT_EQ(s.now(), 0);
  };
  sched.spawn(waiter(sched, timer, fired));
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(TimerTest, RearmingCancelsThePreviousDeadline) {
  Scheduler sched;
  Timer timer(sched);
  std::vector<std::pair<bool, Time>> resumes;
  auto waiter = [](Scheduler& s, Timer& t,
                   std::vector<std::pair<bool, Time>>& log) -> Process {
    t.arm_at(100);
    // First wait is cancelled by the re-arm below; the second sees it fire.
    log.emplace_back(co_await t.wait(), s.now());
    log.emplace_back(co_await t.wait(), s.now());
  };
  auto rearmer = [](Scheduler& s, Timer& t) -> Process {
    co_await s.delay(10);
    t.arm_at(60);
  };
  sched.spawn(waiter(sched, timer, resumes));
  sched.spawn(rearmer(sched, timer));
  sched.run();
  ASSERT_EQ(resumes.size(), 2u);
  EXPECT_EQ(resumes[0], (std::pair<bool, Time>{false, 10}));
  EXPECT_EQ(resumes[1], (std::pair<bool, Time>{true, 60}));
  // The abandoned deadline (100) must not extend the run.
  EXPECT_EQ(sched.now(), 60);
}

TEST(TimerTest, ReusableAfterFiring) {
  Scheduler sched;
  Timer timer(sched);
  std::vector<Time> fired_at;
  auto waiter = [](Scheduler& s, Timer& t, std::vector<Time>& log) -> Process {
    for (int round = 0; round < 3; ++round) {
      t.arm_in(7);
      EXPECT_TRUE(co_await t.wait());
      log.push_back(s.now());
    }
  };
  sched.spawn(waiter(sched, timer, fired_at));
  sched.run();
  EXPECT_EQ(fired_at, (std::vector<Time>{7, 14, 21}));
}

TEST(TimerTest, CancelWithoutWaiterIsHarmless) {
  Scheduler sched;
  Timer timer(sched);
  timer.arm_at(500);
  timer.cancel();
  timer.cancel();  // idempotent
  EXPECT_FALSE(timer.armed());
  sched.run();
  EXPECT_EQ(sched.now(), 0);  // the queued deadline was discarded
}

}  // namespace
