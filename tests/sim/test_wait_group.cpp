#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fifo_ring.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "sim/wait_group.hpp"

namespace {

using namespace s3asim::sim;

TEST(WaitGroupTest, ZeroCountWaitDoesNotSuspend) {
  Scheduler sched;
  WaitGroup group(sched);
  Time woke = -1;
  auto waiter = [](Scheduler& s, WaitGroup& g, Time& out) -> Process {
    co_await g.wait();  // count is zero: must resume inline, at time 0
    out = s.now();
  };
  sched.spawn(waiter(sched, group, woke));
  sched.run();
  EXPECT_EQ(woke, 0);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(WaitGroupTest, WaitReleasesWhenLastChildFinishes) {
  Scheduler sched;
  WaitGroup group(sched);
  Time woke = -1;
  auto child = [](Scheduler& s, WaitGroup& g, Time finish) -> Process {
    co_await s.delay(finish);
    g.done();
  };
  auto parent = [](Scheduler& s, WaitGroup& g, Time& out) -> Process {
    co_await g.wait();
    out = s.now();
  };
  group.add(3);
  sched.spawn(child(sched, group, 100));
  sched.spawn(child(sched, group, 300));
  sched.spawn(child(sched, group, 200));
  sched.spawn(parent(sched, group, woke));
  sched.run();
  EXPECT_EQ(woke, 300);  // the slowest child gates completion
  EXPECT_EQ(group.pending(), 0u);
}

TEST(WaitGroupTest, PendingTracksOutstandingWork) {
  Scheduler sched;
  WaitGroup group(sched);
  group.add(2);
  EXPECT_EQ(group.pending(), 2u);
  group.add();
  EXPECT_EQ(group.pending(), 3u);
  group.done();
  EXPECT_EQ(group.pending(), 2u);
  group.done();
  group.done();
  EXPECT_EQ(group.pending(), 0u);
}

TEST(WaitGroupTest, ReusableAcrossCycles) {
  // The POSIX write path reuses one WaitGroup for every extent round trip:
  // each cycle must behave like a fresh latch.
  Scheduler sched;
  WaitGroup group(sched);
  std::vector<Time> wokes;
  auto cycle = [](Scheduler& s, WaitGroup& g, std::vector<Time>& log) -> Process {
    for (int round = 0; round < 3; ++round) {
      g.add(2);
      auto child = [](Scheduler& sc, WaitGroup& wg, Time finish) -> Process {
        co_await sc.delay(finish);
        wg.done();
      };
      s.spawn(child(s, g, 10));
      s.spawn(child(s, g, 20));
      co_await g.wait();
      log.push_back(s.now());
    }
  };
  sched.spawn(cycle(sched, group, wokes));
  sched.run();
  EXPECT_EQ(wokes, (std::vector<Time>{20, 40, 60}));
}

TEST(WaitGroupTest, MultipleWaitersAllReleaseInFifoOrder) {
  Scheduler sched;
  WaitGroup group(sched);
  std::vector<int> order;
  auto waiter = [](WaitGroup& g, std::vector<int>& log, int id) -> Process {
    co_await g.wait();
    log.push_back(id);
  };
  auto finisher = [](Scheduler& s, WaitGroup& g) -> Process {
    co_await s.delay(50);
    g.done();
  };
  group.add();
  sched.spawn(waiter(group, order, 1));
  sched.spawn(waiter(group, order, 2));
  sched.spawn(waiter(group, order, 3));
  sched.spawn(finisher(sched, group));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(WaitGroupTest, DoneWithoutAddThrows) {
  Scheduler sched;
  WaitGroup group(sched);
  EXPECT_THROW(group.done(), std::invalid_argument);
}

TEST(FifoRingTest, PushPopPreservesFifoOrder) {
  FifoRing<int> ring;
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  EXPECT_EQ(ring.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ring.pop_front(), i);
  EXPECT_TRUE(ring.empty());
}

TEST(FifoRingTest, SteadyStateTrafficWrapsAround) {
  // Interleaved push/pop drives the head around the ring many times at a
  // size far below capacity — the sliding-window pattern of a wait queue.
  FifoRing<int> ring;
  int next_in = 0;
  int next_out = 0;
  for (int i = 0; i < 4; ++i) ring.push_back(next_in++);
  for (int step = 0; step < 1000; ++step) {
    ring.push_back(next_in++);
    EXPECT_EQ(ring.front(), next_out);
    EXPECT_EQ(ring.pop_front(), next_out++);
    EXPECT_EQ(ring.size(), 4u);
  }
}

TEST(FifoRingTest, GrowthPreservesOrderAcrossWrap) {
  FifoRing<std::string> ring;
  // Force the head off zero, then grow through several reallocations.
  for (int i = 0; i < 8; ++i) ring.push_back("pre" + std::to_string(i));
  for (int i = 0; i < 5; ++i) ring.pop_front();
  for (int i = 0; i < 200; ++i) ring.push_back("post" + std::to_string(i));
  EXPECT_EQ(ring.pop_front(), "pre5");
  EXPECT_EQ(ring.pop_front(), "pre6");
  EXPECT_EQ(ring.pop_front(), "pre7");
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(ring.pop_front(), "post" + std::to_string(i));
  EXPECT_TRUE(ring.empty());
}

TEST(FifoRingTest, IndexingIsFifoRelative) {
  FifoRing<int> ring;
  for (int i = 0; i < 10; ++i) ring.push_back(i);
  ring.pop_front();
  ring.pop_front();
  EXPECT_EQ(ring[0], 2);
  EXPECT_EQ(ring[7], 9);
}

TEST(FifoRingTest, ClearResetsToEmpty) {
  FifoRing<int> ring;
  for (int i = 0; i < 10; ++i) ring.push_back(i);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back(42);
  EXPECT_EQ(ring.pop_front(), 42);
}

}  // namespace
