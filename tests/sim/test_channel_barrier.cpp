#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/barrier.hpp"
#include "sim/channel.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace {

using namespace s3asim::sim;

TEST(ChannelTest, PushThenPop) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> got;
  ch.push(1);
  ch.push(2);
  auto consumer = [](Scheduler&, Channel<int>& c, std::vector<int>& log) -> Process {
    while (auto item = co_await c.pop()) log.push_back(*item);
  };
  sched.spawn(consumer(sched, ch, got));
  auto closer = [](Scheduler& s, Channel<int>& c) -> Process {
    co_await s.delay(10);
    c.close();
  };
  sched.spawn(closer(sched, ch));
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, PopBlocksUntilPush) {
  Scheduler sched;
  Channel<std::string> ch(sched);
  Time delivered = -1;
  auto consumer = [](Scheduler& s, Channel<std::string>& c, Time& at) -> Process {
    const auto item = co_await c.pop();
    EXPECT_TRUE(item.has_value());
    if (item) {
      EXPECT_EQ(*item, "payload");
    }
    at = s.now();
    c.close();
  };
  auto producer = [](Scheduler& s, Channel<std::string>& c) -> Process {
    co_await s.delay(777);
    c.push("payload");
  };
  sched.spawn(consumer(sched, ch, delivered));
  sched.spawn(producer(sched, ch));
  sched.run();
  EXPECT_EQ(delivered, 777);
}

TEST(ChannelTest, CloseWakesBlockedConsumerWithNullopt) {
  Scheduler sched;
  Channel<int> ch(sched);
  bool got_nullopt = false;
  auto consumer = [](Scheduler&, Channel<int>& c, bool& flag) -> Process {
    const auto item = co_await c.pop();
    flag = !item.has_value();
  };
  auto closer = [](Scheduler& s, Channel<int>& c) -> Process {
    co_await s.delay(5);
    c.close();
  };
  sched.spawn(consumer(sched, ch, got_nullopt));
  sched.spawn(closer(sched, ch));
  sched.run();
  EXPECT_TRUE(got_nullopt);
}

TEST(ChannelTest, QueuedItemsDrainAfterClose) {
  Scheduler sched;
  Channel<int> ch(sched);
  ch.push(10);
  ch.push(20);
  ch.close();
  std::vector<int> got;
  bool ended = false;
  auto consumer = [](Scheduler&, Channel<int>& c, std::vector<int>& log,
                     bool& end_flag) -> Process {
    while (true) {
      const auto item = co_await c.pop();
      if (!item) {
        end_flag = true;
        co_return;
      }
      log.push_back(*item);
    }
  };
  sched.spawn(consumer(sched, ch, got, ended));
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
  EXPECT_TRUE(ended);
}

TEST(ChannelTest, PushAfterCloseThrows) {
  Scheduler sched;
  Channel<int> ch(sched);
  ch.close();
  EXPECT_THROW(ch.push(1), std::invalid_argument);
}

TEST(ChannelTest, MultipleConsumersShareWorkFifo) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<std::pair<int, int>> handled;  // (consumer, item)
  auto consumer = [](Scheduler&, Channel<int>& c, int id,
                     std::vector<std::pair<int, int>>& log) -> Process {
    while (auto item = co_await c.pop()) log.emplace_back(id, *item);
  };
  sched.spawn(consumer(sched, ch, 0, handled));
  sched.spawn(consumer(sched, ch, 1, handled));
  auto producer = [](Scheduler& s, Channel<int>& c) -> Process {
    co_await s.delay(1);
    c.push(100);
    c.push(200);
    co_await s.delay(1);
    c.close();
  };
  sched.spawn(producer(sched, ch));
  sched.run();
  ASSERT_EQ(handled.size(), 2u);
  // Consumer 0 blocked first, so it receives the first item.
  EXPECT_EQ(handled[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(handled[1], (std::pair<int, int>{1, 200}));
}

TEST(BarrierTest, ReleasesWhenAllArrive) {
  Scheduler sched;
  Barrier barrier(sched, 3);
  std::vector<Time> released;
  auto party = [](Scheduler& s, Barrier& b, Time arrive,
                  std::vector<Time>& log) -> Process {
    co_await s.delay(arrive);
    co_await b.arrive_and_wait();
    log.push_back(s.now());
  };
  sched.spawn(party(sched, barrier, 10, released));
  sched.spawn(party(sched, barrier, 30, released));
  sched.spawn(party(sched, barrier, 20, released));
  sched.run();
  ASSERT_EQ(released.size(), 3u);
  for (const Time t : released) EXPECT_EQ(t, 30);
}

TEST(BarrierTest, IsReusableAcrossGenerations) {
  Scheduler sched;
  Barrier barrier(sched, 2);
  std::vector<Time> released;
  auto party = [](Scheduler& s, Barrier& b, Time step,
                  std::vector<Time>& log) -> Process {
    for (int round = 0; round < 3; ++round) {
      co_await s.delay(step);
      co_await b.arrive_and_wait();
      log.push_back(s.now());
    }
  };
  sched.spawn(party(sched, barrier, 10, released));
  sched.spawn(party(sched, barrier, 25, released));
  sched.run();
  ASSERT_EQ(released.size(), 6u);
  EXPECT_EQ(barrier.generation(), 3u);
  // Rounds complete at the pace of the slower party: 25, 50, 75.
  EXPECT_EQ(released[0], 25);
  EXPECT_EQ(released[1], 25);
  EXPECT_EQ(released[2], 50);
  EXPECT_EQ(released[4], 75);
}

TEST(BarrierTest, SinglePartyNeverBlocks) {
  Scheduler sched;
  Barrier barrier(sched, 1);
  Time done = -1;
  auto party = [](Scheduler& s, Barrier& b, Time& out) -> Process {
    co_await b.arrive_and_wait();
    co_await b.arrive_and_wait();
    out = s.now();
  };
  sched.spawn(party(sched, barrier, done));
  sched.run();
  EXPECT_EQ(done, 0);
}

TEST(BarrierTest, ZeroPartiesRejected) {
  Scheduler sched;
  EXPECT_THROW(Barrier(sched, 0), std::invalid_argument);
}

TEST(BarrierTest, LeaveReducesPartiesForFutureCycles) {
  Scheduler sched;
  Barrier barrier(sched, 3);
  std::vector<Time> released;
  auto party = [](Scheduler& s, Barrier& b, Time arrive,
                  std::vector<Time>& log) -> Process {
    co_await s.delay(arrive);
    co_await b.arrive_and_wait();
    log.push_back(s.now());
  };
  barrier.leave();  // a party fail-stops before anyone arrives
  sched.spawn(party(sched, barrier, 10, released));
  sched.spawn(party(sched, barrier, 20, released));
  sched.run();
  ASSERT_EQ(released.size(), 2u);
  for (const Time t : released) EXPECT_EQ(t, 20);
}

TEST(BarrierTest, LeaveReleasesCurrentCycleIfSatisfied) {
  Scheduler sched;
  Barrier barrier(sched, 3);
  std::vector<Time> released;
  auto party = [](Scheduler& s, Barrier& b, Time arrive,
                  std::vector<Time>& log) -> Process {
    co_await s.delay(arrive);
    co_await b.arrive_and_wait();
    log.push_back(s.now());
  };
  auto leaver = [](Scheduler& s, Barrier& b) -> Process {
    // Two parties are already waiting when the third dies: the cycle must
    // release them rather than hang.
    co_await s.delay(50);
    b.leave();
  };
  sched.spawn(party(sched, barrier, 10, released));
  sched.spawn(party(sched, barrier, 20, released));
  sched.spawn(leaver(sched, barrier));
  sched.run();
  ASSERT_EQ(released.size(), 2u);
  for (const Time t : released) EXPECT_EQ(t, 50);
}

TEST(BarrierTest, StragglerStallsEveryone) {
  Scheduler sched;
  Barrier barrier(sched, 4);
  std::vector<Time> released;
  auto party = [](Scheduler& s, Barrier& b, Time arrive,
                  std::vector<Time>& log) -> Process {
    co_await s.delay(arrive);
    co_await b.arrive_and_wait();
    log.push_back(s.now());
  };
  for (const Time arrive : {1, 2, 3, 1000}) sched.spawn(party(sched, barrier, arrive, released));
  sched.run();
  for (const Time t : released) EXPECT_EQ(t, 1000);
}

}  // namespace
