#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace s3asim::fault;
namespace sim = s3asim::sim;

TEST(ParseTimeTest, SuffixesAndDefaults) {
  EXPECT_EQ(parse_time("1"), sim::seconds(1));
  EXPECT_EQ(parse_time("2s"), sim::seconds(2));
  EXPECT_EQ(parse_time("1.5s"), sim::milliseconds(1500));
  EXPECT_EQ(parse_time("250ms"), sim::milliseconds(250));
  EXPECT_EQ(parse_time("3us"), sim::microseconds(3));
  EXPECT_EQ(parse_time("42ns"), 42);
  EXPECT_EQ(parse_time(" 10 "), sim::seconds(10));
}

TEST(ParseTimeTest, RejectsGarbage) {
  EXPECT_THROW((void)parse_time("fast"), std::invalid_argument);
  EXPECT_THROW((void)parse_time("-1s"), std::invalid_argument);
  EXPECT_THROW((void)parse_time("1x"), std::invalid_argument);
  EXPECT_THROW((void)parse_time(""), std::invalid_argument);
}

TEST(FaultPlanTest, EmptySpecYieldsEmptyPlan) {
  const FaultPlan plan = parse_fault_plan("");
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.perturbs_workers());
  EXPECT_EQ(plan.describe(), "no faults");
  const FaultPlan spaces = parse_fault_plan("  ;  ; ");
  EXPECT_TRUE(spaces.empty());
}

TEST(FaultPlanTest, ParsesEveryClauseKind) {
  const FaultPlan plan = parse_fault_plan(
      "kill:worker=3,at=120s; slow:worker=2,from=10s,factor=4;"
      "delay:worker=1,by=5ms; drop:worker=4,prob=0.25;"
      "server:id=0,from=30s,factor=8,stall=2s; crash:at=200s");
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_EQ(plan.kills[0].rank, 3u);
  EXPECT_EQ(plan.kills[0].at, sim::seconds(120));
  ASSERT_EQ(plan.slowdowns.size(), 1u);
  EXPECT_EQ(plan.slowdowns[0].rank, 2u);
  EXPECT_EQ(plan.slowdowns[0].from, sim::seconds(10));
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].factor, 4.0);
  ASSERT_EQ(plan.delays.size(), 1u);
  EXPECT_EQ(plan.delays[0].from, 0);  // default
  EXPECT_EQ(plan.delays[0].by, sim::milliseconds(5));
  ASSERT_EQ(plan.drops.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.drops[0].probability, 0.25);
  ASSERT_EQ(plan.servers.size(), 1u);
  EXPECT_EQ(plan.servers[0].server, 0u);
  EXPECT_DOUBLE_EQ(plan.servers[0].service_factor, 8.0);
  EXPECT_EQ(plan.servers[0].stall, sim::seconds(2));
  EXPECT_EQ(plan.crash_at, sim::seconds(200));
  EXPECT_TRUE(plan.perturbs_workers());
  EXPECT_NE(plan.describe(), "no faults");
}

TEST(FaultPlanTest, FieldOrderIsFree) {
  const FaultPlan plan = parse_fault_plan("kill:at=5s,worker=1");
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_EQ(plan.kills[0].rank, 1u);
  EXPECT_EQ(plan.kills[0].at, sim::seconds(5));
}

TEST(FaultPlanTest, RejectsMalformedClauses) {
  EXPECT_THROW(parse_fault_plan("explode:worker=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("kill:worker=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("kill:at=5s"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("kill:worker=1,at=5s,at=6s"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("kill:worker=1,at=5s,color=red"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("kill:worker=-1,at=5s"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("kill:worker=1.5,at=5s"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow:worker=1,factor=0.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("drop:worker=1,prob=1.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("server:id=0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:at=1s;crash:at=2s"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("kill worker=1"), std::invalid_argument);
}

TEST(FaultPlanTest, QueryHelpers) {
  const FaultPlan plan = parse_fault_plan(
      "kill:worker=3,at=120s; kill:worker=3,at=60s;"
      "slow:worker=2,from=10s,factor=4; slow:worker=2,from=20s,factor=2;"
      "delay:worker=1,from=5s,by=5ms; drop:worker=4,from=1s,prob=0.25");
  EXPECT_EQ(plan.kill_time(3), sim::seconds(60));  // earliest wins
  EXPECT_EQ(plan.kill_time(2), kNever);
  EXPECT_DOUBLE_EQ(plan.slow_factor(2, sim::seconds(5)), 1.0);
  EXPECT_DOUBLE_EQ(plan.slow_factor(2, sim::seconds(15)), 4.0);
  EXPECT_DOUBLE_EQ(plan.slow_factor(2, sim::seconds(25)), 8.0);  // stacks
  EXPECT_EQ(plan.score_delay(1, sim::seconds(4)), 0);
  EXPECT_EQ(plan.score_delay(1, sim::seconds(6)), sim::milliseconds(5));
  EXPECT_DOUBLE_EQ(plan.drop_probability(4, 0), 0.0);
  EXPECT_DOUBLE_EQ(plan.drop_probability(4, sim::seconds(2)), 0.25);
}

}  // namespace
