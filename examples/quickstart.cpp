/// Quickstart: run one S3aSim simulation of the paper's workload and print
/// the per-phase breakdown.
///
///   ./quickstart [procs] [strategy] [sync|nosync]
///   e.g.  ./quickstart 32 WW-List nosync

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simulation.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace s3asim;
  util::set_log_level(util::LogLevel::Info);

  auto config = core::paper_config();
  if (argc > 1) config.nprocs = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) config.strategy = core::parse_strategy(argv[2]);
  if (argc > 3) config.query_sync = std::string(argv[3]) == "sync";

  std::printf("S3aSim quickstart\n");
  std::printf("  strategy    : %s\n", core::strategy_name(config.strategy));
  std::printf("  processes   : %u (1 master + %u workers)\n", config.nprocs,
              config.nprocs - 1);
  std::printf("  query sync  : %s\n", config.query_sync ? "on" : "off");
  std::printf("  workload    : %u queries x %u fragments, %u-%u results/query\n",
              config.workload.query_count, config.workload.fragment_count,
              config.workload.result_count_min, config.workload.result_count_max);
  std::printf("  file system : %u PVFS2 servers, %s strips\n",
              config.model.pfs.layout.server_count(),
              util::format_bytes(config.model.pfs.layout.strip_size()).c_str());

  const auto stats = core::run_simulation(config);

  std::printf("\n%s\n", stats.phase_table().c_str());
  std::printf("overall execution time : %.2f s (simulated)\n",
              stats.wall_seconds);
  std::printf("output file            : %s in %llu writes, %s\n",
              util::format_bytes(stats.output_bytes).c_str(),
              static_cast<unsigned long long>(
                  stats.fs.server_requests),
              stats.file_exact ? "verified exact (no gaps, no overlap)"
                               : "VERIFICATION FAILED");
  std::printf("file-system activity   : %llu requests, %llu OL pairs, "
              "%llu syncs, %.1f server-busy seconds\n",
              static_cast<unsigned long long>(stats.fs.server_requests),
              static_cast<unsigned long long>(stats.fs.server_pairs),
              static_cast<unsigned long long>(stats.fs.server_syncs),
              stats.fs.server_busy_seconds);
  return stats.file_exact ? 0 : 1;
}
