/// Runs a small simulation with tracing enabled and renders an ASCII Gantt
/// chart of every rank's phases — the Jumpshot-style view the paper used to
/// debug S3aSim (§3).  Also exports the raw intervals as CSV.
///
///   ./trace_timeline [procs] [strategy]

#include <cstdio>
#include <cstdlib>

#include "core/simulation.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace s3asim;

  auto config = core::paper_config();
  config.nprocs = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  config.strategy =
      argc > 2 ? core::parse_strategy(argv[2]) : core::Strategy::WWColl;
  // A small workload keeps the timeline readable.
  config.workload.query_count = 6;
  config.workload.result_count_min = 400;
  config.workload.result_count_max = 800;

  trace::TraceLog trace;
  const auto stats = core::run_simulation(config, &trace);

  std::printf("S3aSim timeline: %s, %u processes, %zu trace intervals\n\n",
              core::strategy_name(config.strategy), config.nprocs,
              trace.size());
  std::printf("%s\n", trace.render_gantt(110).c_str());

  std::printf("per-rank phase totals (rank 0 = master):\n");
  for (std::uint32_t rank = 0; rank < config.nprocs; ++rank) {
    std::printf("  rank %u:", rank);
    for (const auto& [category, time] : trace.totals_for_rank(rank))
      std::printf("  %s %.2fs", category.c_str(), sim::to_seconds(time));
    std::printf("\n");
  }

  trace.export_csv("trace_timeline.csv");
  std::printf("\nwall %.2f s, %s; intervals exported to trace_timeline.csv\n",
              stats.wall_seconds,
              stats.file_exact ? "output verified" : "VERIFICATION FAILED");
  return stats.file_exact ? 0 : 1;
}
