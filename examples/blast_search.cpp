/// A real (non-simulated) sequence-search pipeline built from the bio
/// substrate: generates a synthetic NT-like database, fragments it the way
/// mpiformatdb does, runs the mini-BLAST engine for a set of queries, and
/// reports score-sorted matches — grounding the simulator's result-size
/// model ("up to 3 x max(query, subject)") in an actual search.
///
///   ./blast_search [db_sequences] [queries]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bio/blast.hpp"
#include "bio/fasta.hpp"
#include "bio/generator.hpp"
#include "bio/report.hpp"
#include "util/histogram.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace s3asim;
  const std::uint64_t db_count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  const std::uint64_t query_count =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  // --- Build the database: lengths follow a bounded NT-like histogram. ----
  bio::GeneratorConfig generator;
  generator.seed = 20060627;
  generator.length_histogram =
      util::BoxHistogram{{{200, 1'000, 0.5}, {1'000, 5'000, 0.4},
                          {5'000, 20'000, 0.1}}};
  auto database = bio::generate_sequences(generator, db_count, "nt|synth");
  std::printf("database: %llu sequences, %s total\n",
              static_cast<unsigned long long>(database.size()),
              util::format_bytes(bio::total_residues(database)).c_str());

  // --- Fragment it, mpiformatdb-style. ------------------------------------
  const auto fragments = bio::fragment_database(database, 8);
  std::printf("fragments: 8 (residue-balanced); first fragment holds %zu "
              "sequences\n", fragments[0].size());

  // --- Queries: subsequences of database entries plus mutations, so the
  //     search genuinely finds homologues. ---------------------------------
  util::Xoshiro256 rng(7);
  std::vector<bio::Sequence> queries;
  for (std::uint64_t q = 0; q < query_count; ++q) {
    const auto& source = database[rng.uniform_u64(0, database.size() - 1)];
    const std::uint64_t len =
        std::min<std::uint64_t>(source.length(), 200 + rng.uniform_u64(0, 400));
    const std::uint64_t start = rng.uniform_u64(0, source.length() - len);
    bio::Sequence query;
    query.id = "query|" + std::to_string(q);
    query.data = source.data.substr(start, len);
    for (auto& base : query.data)  // ~2% point mutations
      if (rng.uniform() < 0.02)
        base = bio::kNucleotides[rng.uniform_u64(0, 3)];
    queries.push_back(std::move(query));
  }

  // --- Search. --------------------------------------------------------------
  bio::BlastParams params;
  params.k = 11;
  params.min_score = 30;
  bio::BlastSearcher searcher(database, params);

  std::uint64_t total_output = 0;
  for (const auto& query : queries) {
    const auto matches = searcher.search(query);
    std::printf("\n%s (%llu bp): %zu matches\n", query.id.c_str(),
                static_cast<unsigned long long>(query.length()),
                matches.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(matches.size(), 5); ++i) {
      const auto& match = matches[i];
      const auto& subject = searcher.subjects()[match.subject];
      std::printf("  #%zu  %-16s score=%-5d hsp=[q%u..%u s%u..%u] "
                  "report~%s\n",
                  i + 1, subject.id.c_str(), match.score,
                  match.hsp.query_start, match.hsp.query_end(),
                  match.hsp.subject_start, match.hsp.subject_end(),
                  util::format_bytes(match.output_bytes).c_str());
      total_output += match.output_bytes;
      // The simulator's result-size cap, checked against reality:
      const std::uint64_t cap = 3 * std::max(query.length(), subject.length());
      if (match.output_bytes > cap)
        std::printf("  !! output exceeds the paper's 3x cap\n");
    }
  }
  std::printf("\nestimated formatted output for the shown matches: %s\n",
              util::format_bytes(total_output).c_str());
  std::printf("(this is the quantity S3aSim's workload model draws from its "
              "histograms)\n");

  // --- Show one real formatted report — the text whose size the paper's
  //     "3 x max(query, subject)" rule models. ------------------------------
  if (!queries.empty()) {
    const auto matches = searcher.search(queries[0]);
    if (!matches.empty()) {
      bio::ReportOptions options;
      options.line_width = 60;
      const auto text = bio::format_match(
          queries[0], searcher.subjects()[matches[0].subject], matches[0],
          options);
      const std::string shown =
          text.size() > 1500 ? text.substr(0, 1500) + "...\n" : text;
      std::printf("\n--- formatted report for the best hit of %s ---\n%s",
                  queries[0].id.c_str(), shown.c_str());
      std::printf("(report size: %s)\n",
                  util::format_bytes(text.size()).c_str());
    }
  }
  return 0;
}
