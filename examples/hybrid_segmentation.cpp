/// Demonstrates hybrid query/database segmentation (paper §5 future work):
/// the ranks split into independent master/worker teams, queries divided
/// across teams, database segmented within each team — all sharing one
/// cluster and one parallel file system.
///
///   ./hybrid_segmentation [procs] [strategy]

#include <cstdio>
#include <cstdlib>

#include "core/simulation.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace s3asim;
  const std::uint32_t procs =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 48;
  const core::Strategy strategy =
      argc > 2 ? core::parse_strategy(argv[2]) : core::Strategy::MW;

  auto config = core::paper_config();
  config.nprocs = procs;
  config.strategy = strategy;

  std::printf("S3aSim hybrid segmentation: %s at %u ranks\n",
              core::strategy_name(strategy), procs);
  std::printf("(groups = 1 is plain database segmentation; more groups add "
              "query segmentation on top)\n\n");

  util::TextTable table({"Groups", "Team size", "Wall (s)",
                         "vs 1 group", "Output"});
  double baseline = 0.0;
  for (const std::uint32_t groups : {1u, 2u, 4u}) {
    if (procs % groups != 0 || procs / groups < 2) continue;
    const auto stats = core::run_hybrid_simulation(config, groups);
    if (baseline == 0.0) baseline = stats.wall_seconds;
    table.add_row({std::to_string(groups),
                   std::to_string(procs / groups) + " ranks",
                   util::format_fixed(stats.wall_seconds),
                   util::format_fixed(
                       (baseline / stats.wall_seconds - 1.0) * 100.0, 1) + "%",
                   util::format_bytes(stats.output_bytes) +
                       (stats.file_exact ? " ok" : " BAD")});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nMW benefits most: each team brings its own master, dividing "
              "the §2.1 centralization bottleneck.\n");
  return 0;
}
