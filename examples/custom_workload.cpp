/// Demonstrates S3aSim's configurability (§3: total fragments, query count,
/// box histograms, result counts, compute speeds, hints, flush policy...).
/// Builds a protein-sized workload from a user-defined histogram, derives a
/// second histogram empirically from generated FASTA data, and contrasts
/// per-query flushing with mpiBLAST-1.2-style write-at-end.

#include <cstdio>
#include <vector>

#include "bio/fasta.hpp"
#include "bio/generator.hpp"
#include "core/fasta_workload.hpp"
#include "core/simulation.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace s3asim;

  // --- A custom box histogram: short protein-like sequences. --------------
  const util::BoxHistogram protein_lengths{
      {60, 200, 0.35}, {200, 600, 0.45}, {600, 2'000, 0.18},
      {2'000, 10'000, 0.02}};
  std::printf("custom database histogram:\n%s\n",
              protein_lengths.describe().c_str());

  // --- Or derive one empirically from real (generated) sequences. ---------
  bio::GeneratorConfig generator;
  generator.seed = 11;
  generator.length_histogram = protein_lengths;
  const auto sequences = bio::generate_sequences(generator, 2'000, "prot");
  std::vector<std::uint64_t> lengths;
  lengths.reserve(sequences.size());
  for (const auto& sequence : sequences) lengths.push_back(sequence.length());
  const auto empirical = util::build_histogram(lengths, 12);
  std::printf("empirical histogram rebuilt from %zu generated sequences "
              "(mean %s vs source mean %s)\n\n",
              sequences.size(),
              util::format_bytes(static_cast<std::uint64_t>(empirical.mean())).c_str(),
              util::format_bytes(static_cast<std::uint64_t>(protein_lengths.mean())).c_str());

  // --- Configure a simulation around it. -----------------------------------
  auto config = core::paper_config();
  config.nprocs = 24;
  config.strategy = core::Strategy::WWList;
  config.workload.query_count = 40;
  config.workload.fragment_count = 64;
  config.workload.database_histogram = empirical;
  config.workload.query_histogram = protein_lengths;
  config.workload.result_count_min = 300;
  config.workload.result_count_max = 900;
  config.workload.min_result_bytes = 256;

  util::TextTable table({"Flush policy", "Wall (s)", "FS requests", "Syncs",
                         "Output"});
  for (const std::uint32_t flush :
       {1u, 5u, config.workload.query_count /* write-at-end */}) {
    config.queries_per_flush = flush;
    const auto stats = core::run_simulation(config);
    const std::string label =
        flush == 1 ? "every query"
                   : (flush == config.workload.query_count
                          ? "at end (mpiBLAST 1.2 style)"
                          : "every " + std::to_string(flush) + " queries");
    table.add_row({label, util::format_fixed(stats.wall_seconds),
                   std::to_string(stats.fs.server_requests),
                   std::to_string(stats.fs.server_syncs),
                   util::format_bytes(stats.output_bytes) +
                       (stats.file_exact ? " ok" : " BAD")});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nLess frequent flushing trades failure-resumability (§2) for "
              "fewer, larger I/O operations.\n");

  // --- Deriving a workload from real FASTA files (the paper's own method:
  //     it measured the NT database's histogram, §3.3). --------------------
  const std::string db_path = "custom_workload_db.fa";
  const std::string query_path = "custom_workload_queries.fa";
  bio::write_fasta_file(db_path, sequences);
  bio::write_fasta_file(query_path, bio::generate_queries(99, 10));

  auto fasta_config = core::paper_config();
  fasta_config.nprocs = 24;
  fasta_config.workload =
      core::workload_from_fasta(db_path, query_path, fasta_config.workload);
  fasta_config.workload.result_count_min = 200;
  fasta_config.workload.result_count_max = 400;
  fasta_config.worker_memory_bytes = fasta_config.workload.database_bytes / 8;
  const auto fasta_stats = core::run_simulation(fasta_config);
  std::printf("\nFASTA-derived workload: %u queries, database %s on disk "
              "(streamed %s during the run), wall %.2f s, %s\n",
              fasta_config.workload.query_count,
              util::format_bytes(fasta_config.workload.database_bytes).c_str(),
              util::format_bytes(fasta_stats.db_bytes_read).c_str(),
              fasta_stats.wall_seconds,
              fasta_stats.file_exact ? "verified" : "VERIFICATION FAILED");
  std::remove(db_path.c_str());
  std::remove(query_path.c_str());
  return 0;
}
