/// Compares all five I/O strategies (the paper's four plus the WW-CollList
/// extension) on the same workload, in both query-sync modes — a compact
/// rendition of the paper's whole evaluation at one process count.
///
///   ./strategy_comparison [procs]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/simulation.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace s3asim;
  const std::uint32_t procs =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 32;

  std::printf("S3aSim strategy comparison at %u processes\n", procs);

  const std::vector<core::Strategy> strategies{
      core::Strategy::MW,       core::Strategy::WWPosix,
      core::Strategy::WWList,   core::Strategy::WWColl,
      core::Strategy::WWCollList, core::Strategy::WWFilePerProcess};

  util::TextTable table({"Strategy", "No-sync (s)", "Sync (s)",
                         "Sync penalty", "Worker I/O (s)", "Worker DD (s)"});
  double best_nosync = 0.0;
  std::string best_name;
  for (const auto strategy : strategies) {
    auto config = core::paper_config();
    config.nprocs = procs;
    config.strategy = strategy;

    config.query_sync = false;
    const auto nosync = core::run_simulation(config);
    config.query_sync = true;
    const auto sync = core::run_simulation(config);

    table.add_row(
        {core::strategy_name(strategy),
         util::format_fixed(nosync.wall_seconds),
         util::format_fixed(sync.wall_seconds),
         util::format_fixed(
             (sync.wall_seconds / nosync.wall_seconds - 1.0) * 100.0, 1) + "%",
         util::format_fixed(nosync.worker_mean_seconds(core::Phase::Io)),
         util::format_fixed(
             nosync.worker_mean_seconds(core::Phase::DataDistribution))});
    if (best_name.empty() || nosync.wall_seconds < best_nosync) {
      best_nosync = nosync.wall_seconds;
      best_name = core::strategy_name(strategy);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nFastest no-sync strategy at %u processes: %s (%.2f s)\n",
              procs, best_name.c_str(), best_nosync);
  std::printf("Paper expectation at scale: WW-List wins; MW trails by the "
              "largest margin; WW-Coll and MW are insensitive to sync.\n");
  return 0;
}
